package xmlenc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) *Node {
	t.Helper()
	doc, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return doc
}

func TestParseSimple(t *testing.T) {
	doc := mustParse(t, `<a x="1"><b>hi</b><c/></a>`)
	root := doc.Root()
	if root == nil || root.Name != "a" {
		t.Fatalf("root = %+v", root)
	}
	if v, ok := root.Attr("x"); !ok || v != "1" {
		t.Fatalf("attr x = %q, %v", v, ok)
	}
	if _, ok := root.Attr("y"); ok {
		t.Fatal("attr y should be absent")
	}
	if root.AttrDefault("y", "z") != "z" {
		t.Fatal("AttrDefault")
	}
	b := root.First("b")
	if b == nil || b.Text() != "hi" {
		t.Fatalf("b = %+v", b)
	}
	if len(root.Elements("")) != 2 {
		t.Fatalf("element children = %d, want 2", len(root.Elements("")))
	}
	if len(root.Elements("c")) != 1 {
		t.Fatal("Elements(c)")
	}
}

func TestParseDeclarationAndDoctype(t *testing.T) {
	src := `<?xml version="1.0" encoding="UTF-8"?>
<!DOCTYPE movies [ <!ELEMENT x (y)> ]>
<movies><x><y>1</y></x></movies>`
	doc := mustParse(t, src)
	if doc.Root().Name != "movies" {
		t.Fatalf("root = %q", doc.Root().Name)
	}
}

func TestParseEntitiesAndCDATA(t *testing.T) {
	doc := mustParse(t, `<a b="&lt;&amp;&quot;&#65;&#x42;">x &amp; y<![CDATA[<raw> & stuff]]>z</a>`)
	root := doc.Root()
	if v, _ := root.Attr("b"); v != `<&"AB` {
		t.Fatalf("attr = %q", v)
	}
	if got := root.Text(); got != "x & y<raw> & stuffz" {
		t.Fatalf("text = %q", got)
	}
	// CDATA and adjacent text must be merged into one text node.
	if n := len(root.Children); n != 1 {
		t.Fatalf("children = %d, want merged 1", n)
	}
}

func TestParseComments(t *testing.T) {
	src := `<a><!-- remark --><b/></a>`
	doc := mustParse(t, src)
	if len(doc.Root().Children) != 1 {
		t.Fatal("comments should be dropped by default")
	}
	doc2, err := ParseOptions(src, Options{KeepComments: true})
	if err != nil {
		t.Fatal(err)
	}
	kids := doc2.Root().Children
	if len(kids) != 2 || kids[0].Kind != KindComment || kids[0].Value != " remark " {
		t.Fatalf("children = %+v", kids)
	}
}

func TestParsePI(t *testing.T) {
	doc := mustParse(t, `<?xml-stylesheet href="x.css"?><a/>`)
	var pi *Node
	for _, c := range doc.Children {
		if c.Kind == KindPI {
			pi = c
		}
	}
	if pi == nil || pi.Name != "xml-stylesheet" || pi.Value != `href="x.css"` {
		t.Fatalf("pi = %+v", pi)
	}
}

func TestParseWhitespaceHandling(t *testing.T) {
	src := "<a>\n  <b>x</b>\n</a>"
	doc := mustParse(t, src)
	if len(doc.Root().Children) != 1 {
		t.Fatalf("whitespace-only text should be dropped: %+v", doc.Root().Children)
	}
	doc2, err := ParseOptions(src, Options{KeepWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(doc2.Root().Children) != 3 {
		t.Fatalf("with KeepWhitespace: %d children", len(doc2.Root().Children))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,                       // no root
		`<a>`,                    // unclosed
		`</a>`,                   // end at top level
		`<a></b>`,                // mismatch
		`<a b=c></a>`,            // unquoted attr
		`<a b="1" b="2"></a>`,    // duplicate attr
		`<a b="1></a>`,           // unterminated attr value
		`<a>&unknown;</a>`,       // unknown entity
		`<a>&#xZZ;</a>`,          // bad char ref
		`<a><!-- foo </a>`,       // unterminated comment
		`<a><![CDATA[x</a>`,      // unterminated cdata
		`hello<a/>`,              // text at top level
		`<a b="<"></a>`,          // < in attribute
		`<1a/>`,                  // bad name
		`<a/><b/>` + `<a>text`,   // junk after root + unclosed
		`<?pi unterminated <a/>`, // unterminated PI
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("<a>\n<b>\n</c>\n</a>")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %T", err)
	}
	if pe.Line != 3 {
		t.Fatalf("line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Fatalf("message = %q", pe.Error())
	}
}

func TestWriteCompact(t *testing.T) {
	doc := mustParse(t, `<a x="1&amp;2"><b>hi &lt;there&gt;</b><c/></a>`)
	got := Compact(doc)
	want := `<a x="1&amp;2"><b>hi &lt;there&gt;</b><c/></a>`
	if got != want {
		t.Fatalf("Compact = %q, want %q", got, want)
	}
}

func TestWriteIndent(t *testing.T) {
	doc := mustParse(t, `<a><b><c/></b></a>`)
	got := String(doc, WriteOptions{Indent: "  ", Declaration: true})
	want := "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<a>\n  <b>\n    <c/>\n  </b>\n</a>\n"
	if got != want {
		t.Fatalf("indented output:\n%q\nwant:\n%q", got, want)
	}
}

func TestWriteMixedContentStaysInline(t *testing.T) {
	doc := mustParse(t, `<a>pre<b>x</b>post</a>`)
	got := String(doc, WriteOptions{Indent: "  "})
	if !strings.Contains(got, "pre<b>x</b>post") {
		t.Fatalf("mixed content must stay inline: %q", got)
	}
}

func TestSetAttr(t *testing.T) {
	n := NewElement("a")
	n.SetAttr("k", "1")
	n.SetAttr("k", "2")
	n.SetAttr("j", "3")
	if v, _ := n.Attr("k"); v != "2" {
		t.Fatalf("k = %q", v)
	}
	if len(n.Attrs) != 2 {
		t.Fatalf("attrs = %v", n.Attrs)
	}
}

func TestEscapeFunctions(t *testing.T) {
	if got := EscapeText(`a<b>&c`); got != "a&lt;b&gt;&amp;c" {
		t.Fatalf("EscapeText = %q", got)
	}
	if got := EscapeAttr("a\"b\nc\t<"); got != "a&quot;b&#10;c&#9;&lt;" {
		t.Fatalf("EscapeAttr = %q", got)
	}
	// Fast path: no escaping needed returns same string.
	if got := EscapeText("plain"); got != "plain" {
		t.Fatal("EscapeText fast path")
	}
}

func TestUnescapeErrors(t *testing.T) {
	for _, s := range []string{"&amp", "&bogus;", "&#xGG;", "&#abc;"} {
		if _, err := Unescape(s); err == nil {
			t.Errorf("Unescape(%q) should fail", s)
		}
	}
	if got, err := Unescape("&#x1F600;"); err != nil || got != "\U0001F600" {
		t.Fatalf("unicode ref = %q, %v", got, err)
	}
}

// randomTree builds a random XML tree for round-trip property testing.
func randomTree(rng *rand.Rand, depth int) *Node {
	el := NewElement(randomName(rng))
	for i := rng.Intn(3); i > 0; i-- {
		el.SetAttr(randomName(rng), randomText(rng))
	}
	n := rng.Intn(4)
	for i := 0; i < n; i++ {
		if depth > 0 && rng.Intn(2) == 0 {
			el.Children = append(el.Children, randomTree(rng, depth-1))
		} else if txt := randomText(rng); strings.TrimSpace(txt) != "" {
			el.Children = append(el.Children, NewText(txt))
		}
	}
	return el
}

func randomName(rng *rand.Rand) string {
	letters := "abcdefgh"
	n := 1 + rng.Intn(6)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(letters[rng.Intn(len(letters))])
	}
	return b.String()
}

func randomText(rng *rand.Rand) string {
	chars := `ab &<>"'x 0`
	n := rng.Intn(8)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(chars[rng.Intn(len(chars))])
	}
	return b.String()
}

func equalTree(a, b *Node) bool {
	if a.Kind != b.Kind || a.Name != b.Name || a.Value != b.Value {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !equalTree(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// normalizeText merges adjacent text children, since the parser merges them.
func normalizeText(n *Node) {
	var out []*Node
	for _, c := range n.Children {
		normalizeText(c)
		if c.Kind == KindText && len(out) > 0 && out[len(out)-1].Kind == KindText {
			out[len(out)-1].Value += c.Value
			continue
		}
		out = append(out, c)
	}
	n.Children = out
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomTree(rng, 4)
		normalizeText(tree)
		doc := &Node{Kind: KindDocument, Children: []*Node{tree}}
		out := Compact(doc)
		back, err := ParseOptions(out, Options{KeepWhitespace: true})
		if err != nil {
			t.Logf("reparse failed for %q: %v", out, err)
			return false
		}
		return equalTree(doc, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
