// Package xmlenc is a small, self-contained XML substrate: a lexer, a
// document parser and a writer, with entity escaping. It implements the
// subset of XML 1.0 needed by the MCT system — elements, attributes,
// character data, CDATA sections, comments, processing instructions and a
// skipped DOCTYPE — without namespaces-aware validation or DTD processing.
//
// It exists because the MCT exchange model (paper Section 5) serializes
// multi-colored databases as plain XML, and the experiment datasets are
// generated to and loaded from XML files.
package xmlenc

import (
	"fmt"
	"strings"
)

// Kind enumerates parsed node kinds.
type Kind uint8

// Parsed node kinds.
const (
	KindDocument Kind = iota
	KindElement
	KindText
	KindComment
	KindPI
)

// Attr is a parsed attribute.
type Attr struct {
	Name  string
	Value string
}

// Node is a node of a parsed XML document tree. Document and element nodes
// have children; text, comment and PI nodes carry Value. PI nodes use Name
// for the target.
type Node struct {
	Kind     Kind
	Name     string
	Value    string
	Attrs    []Attr
	Children []*Node
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrDefault returns the named attribute's value or def when absent.
func (n *Node) AttrDefault(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// SetAttr sets or replaces an attribute.
func (n *Node) SetAttr(name, value string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// Root returns the document's single element root, or nil.
func (n *Node) Root() *Node {
	if n.Kind != KindDocument {
		return nil
	}
	for _, c := range n.Children {
		if c.Kind == KindElement {
			return c
		}
	}
	return nil
}

// Text returns the concatenation of the node's direct text children (for
// elements), or its own value (for text nodes).
func (n *Node) Text() string {
	if n.Kind == KindText {
		return n.Value
	}
	var b strings.Builder
	for _, c := range n.Children {
		if c.Kind == KindText {
			b.WriteString(c.Value)
		}
	}
	return b.String()
}

// Elements returns the element children of n, optionally filtered by name
// (empty name matches all).
func (n *Node) Elements(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == KindElement && (name == "" || c.Name == name) {
			out = append(out, c)
		}
	}
	return out
}

// First returns the first element child with the given name, or nil.
func (n *Node) First(name string) *Node {
	for _, c := range n.Children {
		if c.Kind == KindElement && c.Name == name {
			return c
		}
	}
	return nil
}

// NewElement constructs an element node.
func NewElement(name string, children ...*Node) *Node {
	return &Node{Kind: KindElement, Name: name, Children: children}
}

// NewText constructs a text node.
func NewText(value string) *Node { return &Node{Kind: KindText, Value: value} }

// ParseError reports a syntax error with byte offset and 1-based line.
type ParseError struct {
	Offset int
	Line   int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xmlenc: line %d (offset %d): %s", e.Line, e.Offset, e.Msg)
}
