package xmlenc

import (
	"fmt"
	"io"
	"os"
)

// Parse parses a complete XML document from src and returns its document
// node. Whitespace-only text between elements is preserved only when
// keepSpace is true in ParseOptions; Parse uses the default of dropping it.
func Parse(src string) (*Node, error) {
	return ParseOptions(src, Options{})
}

// Options controls parsing behaviour.
type Options struct {
	// KeepWhitespace preserves whitespace-only text nodes. The default drops
	// them, matching the data-oriented usage in this repository.
	KeepWhitespace bool
	// KeepComments preserves comment nodes. The default drops them.
	KeepComments bool
}

// ParseOptions parses a complete XML document with explicit options.
func ParseOptions(src string, opt Options) (*Node, error) {
	lx := newLexer(src)
	doc := &Node{Kind: KindDocument}
	stack := []*Node{doc}
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		top := stack[len(stack)-1]
		switch tok.kind {
		case tokEOF:
			if len(stack) != 1 {
				return nil, &ParseError{Offset: tok.offset, Line: lx.line,
					Msg: fmt.Sprintf("unexpected end of input: <%s> not closed", top.Name)}
			}
			if doc.Root() == nil {
				return nil, &ParseError{Offset: tok.offset, Line: lx.line, Msg: "document has no root element"}
			}
			return doc, nil
		case tokStartTag:
			if len(stack) == 1 && doc.Root() != nil {
				return nil, &ParseError{Offset: tok.offset, Line: lx.line,
					Msg: fmt.Sprintf("second root element <%s>", tok.name)}
			}
			el := &Node{Kind: KindElement, Name: tok.name, Attrs: tok.attrs}
			top.Children = append(top.Children, el)
			if !tok.selfClose {
				stack = append(stack, el)
			}
		case tokEndTag:
			if len(stack) == 1 {
				return nil, &ParseError{Offset: tok.offset, Line: lx.line,
					Msg: fmt.Sprintf("unexpected </%s> at document level", tok.name)}
			}
			if top.Name != tok.name {
				return nil, &ParseError{Offset: tok.offset, Line: lx.line,
					Msg: fmt.Sprintf("mismatched end tag: </%s> closes <%s>", tok.name, top.Name)}
			}
			stack = stack[:len(stack)-1]
		case tokText:
			if len(stack) == 1 {
				if isSpace(tok.value) {
					continue // inter-element whitespace at document level
				}
				return nil, &ParseError{Offset: tok.offset, Line: lx.line, Msg: "character data at document level"}
			}
			if !opt.KeepWhitespace && isSpace(tok.value) {
				continue
			}
			// Merge adjacent text nodes (CDATA followed by text, etc.).
			if n := len(top.Children); n > 0 && top.Children[n-1].Kind == KindText {
				top.Children[n-1].Value += tok.value
				continue
			}
			top.Children = append(top.Children, &Node{Kind: KindText, Value: tok.value})
		case tokComment:
			if opt.KeepComments {
				top.Children = append(top.Children, &Node{Kind: KindComment, Value: tok.value})
			}
		case tokPI:
			top.Children = append(top.Children, &Node{Kind: KindPI, Name: tok.name, Value: tok.value})
		}
	}
}

// ParseFile reads and parses the XML file at path.
func ParseFile(path string) (*Node, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("xmlenc: %w", err)
	}
	return Parse(string(data))
}

// ParseReader reads all of r and parses it.
func ParseReader(r io.Reader) (*Node, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmlenc: %w", err)
	}
	return Parse(string(data))
}

func isSpace(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}
