package pathexpr

import (
	"fmt"
	"strconv"
	"strings"
)

// TokKind enumerates lexical tokens of the expression language. It is shared
// with the MCXQuery parser, which embeds path expressions in FLWOR clauses.
type TokKind uint8

// Token kinds.
const (
	TokEOF          TokKind = iota
	TokIdent                // names, axis names, keywords (and, or, div, mod, for...)
	TokVar                  // $name
	TokString               // "..." or '...'
	TokNumber               // 123 or 1.5
	TokLBrace               // {
	TokRBrace               // }
	TokLBracket             // [
	TokRBracket             // ]
	TokLParen               // (
	TokRParen               // )
	TokSlash                // /
	TokSlashSlash           // //
	TokAxis                 // ::
	TokAt                   // @
	TokDot                  // .
	TokDotDot               // ..
	TokComma                // ,
	TokEq                   // =
	TokNe                   // !=
	TokLt                   // <
	TokLe                   // <=
	TokGt                   // >
	TokGe                   // >=
	TokPlus                 // +
	TokMinus                // -
	TokStar                 // *
	TokAssign               // := (used by MCXQuery let)
	TokTagOpen              // <name at element-constructor position (MCXQuery)
	TokTagClose             // > ending a constructor start tag (MCXQuery)
	TokTagSelfClose         // /> (MCXQuery)
	TokTagEnd               // </name> (MCXQuery)
	TokRawText              // raw constructor content (MCXQuery)
	TokSemicolon            // ;
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string // identifier/var name, string value, or number text
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokIdent, TokNumber:
		return fmt.Sprintf("%q", t.Text)
	case TokVar:
		return fmt.Sprintf("$%s", t.Text)
	case TokString:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// SyntaxError reports a parse error with its byte offset.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("pathexpr: offset %d: %s", e.Pos, e.Msg)
}

// Lexer tokenizes MCXQuery source text. It is exported so the mcxquery
// package can share it.
type Lexer struct {
	src string
	pos int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Pos returns the current byte offset.
func (lx *Lexer) Pos() int { return lx.pos }

// SetPos repositions the lexer to an absolute byte offset. The mcxquery
// modal lexer uses it to hand raw constructor content back and forth.
func (lx *Lexer) SetPos(p int) { lx.pos = p }

// Source returns the full source text being lexed.
func (lx *Lexer) Source() string { return lx.src }

// SkipSpace advances past whitespace and (: ... :) comments, for callers
// that scan raw characters at the current position.
func (lx *Lexer) SkipSpace() { lx.skipSpace() }

// Errf builds a SyntaxError at the given position.
func Errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (lx *Lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			lx.pos++
			continue
		}
		// (: comment :) XQuery-style comments.
		if c == '(' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == ':' {
			depth := 1
			i := lx.pos + 2
			for i < len(lx.src) && depth > 0 {
				if strings.HasPrefix(lx.src[i:], "(:") {
					depth++
					i += 2
				} else if strings.HasPrefix(lx.src[i:], ":)") {
					depth--
					i += 2
				} else {
					i++
				}
			}
			lx.pos = i
			continue
		}
		return
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

// Next returns the next token. Identifiers are maximal name runs; note that
// XPath names may contain '-' and '.', so "a -b" and "a-b" differ.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpace()
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := lx.src[lx.pos]
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch {
	case two == "//":
		lx.pos += 2
		return Token{Kind: TokSlashSlash, Text: "//", Pos: start}, nil
	case two == "::":
		lx.pos += 2
		return Token{Kind: TokAxis, Text: "::", Pos: start}, nil
	case two == "!=":
		lx.pos += 2
		return Token{Kind: TokNe, Text: "!=", Pos: start}, nil
	case two == "<=":
		lx.pos += 2
		return Token{Kind: TokLe, Text: "<=", Pos: start}, nil
	case two == ">=":
		lx.pos += 2
		return Token{Kind: TokGe, Text: ">=", Pos: start}, nil
	case two == ":=":
		lx.pos += 2
		return Token{Kind: TokAssign, Text: ":=", Pos: start}, nil
	case two == "..":
		lx.pos += 2
		return Token{Kind: TokDotDot, Text: "..", Pos: start}, nil
	}
	switch c {
	case '{':
		lx.pos++
		return Token{Kind: TokLBrace, Text: "{", Pos: start}, nil
	case '}':
		lx.pos++
		return Token{Kind: TokRBrace, Text: "}", Pos: start}, nil
	case '[':
		lx.pos++
		return Token{Kind: TokLBracket, Text: "[", Pos: start}, nil
	case ']':
		lx.pos++
		return Token{Kind: TokRBracket, Text: "]", Pos: start}, nil
	case '(':
		lx.pos++
		return Token{Kind: TokLParen, Text: "(", Pos: start}, nil
	case ')':
		lx.pos++
		return Token{Kind: TokRParen, Text: ")", Pos: start}, nil
	case '/':
		lx.pos++
		return Token{Kind: TokSlash, Text: "/", Pos: start}, nil
	case '@':
		lx.pos++
		return Token{Kind: TokAt, Text: "@", Pos: start}, nil
	case ',':
		lx.pos++
		return Token{Kind: TokComma, Text: ",", Pos: start}, nil
	case ';':
		lx.pos++
		return Token{Kind: TokSemicolon, Text: ";", Pos: start}, nil
	case '=':
		lx.pos++
		return Token{Kind: TokEq, Text: "=", Pos: start}, nil
	case '<':
		lx.pos++
		return Token{Kind: TokLt, Text: "<", Pos: start}, nil
	case '>':
		lx.pos++
		return Token{Kind: TokGt, Text: ">", Pos: start}, nil
	case '+':
		lx.pos++
		return Token{Kind: TokPlus, Text: "+", Pos: start}, nil
	case '-':
		lx.pos++
		return Token{Kind: TokMinus, Text: "-", Pos: start}, nil
	case '*':
		lx.pos++
		return Token{Kind: TokStar, Text: "*", Pos: start}, nil
	case '.':
		lx.pos++
		return Token{Kind: TokDot, Text: ".", Pos: start}, nil
	case '$':
		lx.pos++
		if lx.pos >= len(lx.src) || !isIdentStart(lx.src[lx.pos]) {
			return Token{}, Errf(start, "expected variable name after '$'")
		}
		s := lx.pos
		for lx.pos < len(lx.src) && isIdentChar(lx.src[lx.pos]) {
			lx.pos++
		}
		return Token{Kind: TokVar, Text: lx.src[s:lx.pos], Pos: start}, nil
	case '"', '\'':
		quote := c
		lx.pos++
		s := lx.pos
		for lx.pos < len(lx.src) && lx.src[lx.pos] != quote {
			lx.pos++
		}
		if lx.pos >= len(lx.src) {
			return Token{}, Errf(start, "unterminated string literal")
		}
		text := lx.src[s:lx.pos]
		lx.pos++
		return Token{Kind: TokString, Text: text, Pos: start}, nil
	}
	if c >= '0' && c <= '9' {
		s := lx.pos
		for lx.pos < len(lx.src) && (lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9') {
			lx.pos++
		}
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' {
			lx.pos++
			for lx.pos < len(lx.src) && (lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9') {
				lx.pos++
			}
		}
		text := lx.src[s:lx.pos]
		if _, err := strconv.ParseFloat(text, 64); err != nil {
			return Token{}, Errf(start, "malformed number %q", text)
		}
		return Token{Kind: TokNumber, Text: text, Pos: start}, nil
	}
	if isIdentStart(c) {
		s := lx.pos
		for lx.pos < len(lx.src) && isIdentChar(lx.src[lx.pos]) {
			lx.pos++
		}
		return Token{Kind: TokIdent, Text: lx.src[s:lx.pos], Pos: start}, nil
	}
	return Token{}, Errf(start, "unexpected character %q", string(c))
}

// Tokens lexes the whole input, for parser lookahead convenience.
func Tokens(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
