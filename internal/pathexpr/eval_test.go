package pathexpr_test

import (
	"errors"
	"testing"

	"colorfulxml/internal/core"
	"colorfulxml/internal/fixtures"
	"colorfulxml/internal/pathexpr"
)

func evalQuery(t *testing.T, m *fixtures.MovieDB, src string, vars map[string]pathexpr.Sequence) pathexpr.Sequence {
	t.Helper()
	e, err := pathexpr.ParseString(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	env := &pathexpr.Env{DB: m.DB, Vars: vars}
	out, err := pathexpr.Eval(env, e)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return out
}

func names(seq pathexpr.Sequence) []string {
	var out []string
	for _, it := range seq {
		out = append(out, pathexpr.ItemString(it))
	}
	return out
}

func TestEvalQ1ComedyMoviesWithEve(t *testing.T) {
	m := fixtures.NewMovieDB()
	// Paper query Q1: names of comedy movies whose title contains "Eve".
	src := `document("mdb.xml")/{red}descendant::movie-genre[{red}child::name = "Comedy"]/{red}descendant::movie[contains({red}child::name, "Eve")]/{red}child::name`
	got := names(evalQuery(t, m, src, nil))
	if len(got) != 1 || got[0] != "All About Eve" {
		t.Fatalf("Q1 = %v", got)
	}
}

func TestEvalQ2OscarNominatedComedies(t *testing.T) {
	m := fixtures.NewMovieDB()
	// All comedy movies (including sub-genre slapstick): via descendant.
	comedyMovies := evalQuery(t, m,
		`document("mdb.xml")/{red}descendant::movie-genre[{red}child::name = "Comedy"]/{red}descendant::movie`, nil)
	if len(comedyMovies) != 3 {
		t.Fatalf("comedy movies = %d, want 3 (eve, hot, duck)", len(comedyMovies))
	}
	// Green path: Oscar nominated movies.
	oscarMovies := evalQuery(t, m,
		`document("mdb.xml")/{green}descendant::movie-award[contains({green}child::name, "Oscar")]/{green}descendant::movie`, nil)
	if len(oscarMovies) != 3 {
		t.Fatalf("oscar movies = %d, want 3 (eve, hot, angry)", len(oscarMovies))
	}
	// Intersection via [. = $m] idiom: comedies that are Oscar nominated.
	var count int
	for _, om := range oscarMovies {
		vars := map[string]pathexpr.Sequence{"m": {om}}
		r := evalQuery(t, m,
			`document("mdb.xml")/{red}descendant::movie-genre[{red}child::name = "Comedy"]/{red}descendant::movie[. = $m]`, vars)
		count += len(r)
	}
	if count != 2 {
		t.Fatalf("oscar comedies = %d, want 2 (eve, hot)", count)
	}
}

func TestEvalQ4ColorCrossingPath(t *testing.T) {
	m := fixtures.NewMovieDB()
	// Q4: actors in Oscar-nominated movies with more than 10 votes, reached
	// by crossing green -> red -> blue in one path expression.
	src := `document("mdb.xml")/{green}descendant::movie-award[contains({green}child::name, "Oscar")]/{green}descendant::movie[{green}child::votes > 10]/{red}child::movie-role/{blue}parent::actor/{blue}child::name`
	got := names(evalQuery(t, m, src, nil))
	want := map[string]bool{"Bette Davis": true, "Marilyn Monroe": true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] || got[0] == got[1] {
		t.Fatalf("Q4 = %v", got)
	}
}

func TestEvalAncestorAxis(t *testing.T) {
	m := fixtures.NewMovieDB()
	// With ancestor axes Q3 becomes a single path (paper Section 2.2 note):
	// from Bette Davis's roles, up the red tree to the movie.
	src := `document("mdb.xml")/{blue}descendant::actor[{blue}child::name = "Bette Davis"]/{blue}child::movie-role/{red}ancestor::movie/{red}child::name`
	got := names(evalQuery(t, m, src, nil))
	if len(got) != 1 || got[0] != "All About Eve" {
		t.Fatalf("Q3-single-path = %v", got)
	}
}

func TestEvalColorIncompatibleStepIsEmpty(t *testing.T) {
	m := fixtures.NewMovieDB()
	// duck is not nominated: it has no green parent.
	vars := map[string]pathexpr.Sequence{
		"m": {pathexpr.NodeItem(m.Node("duck"), fixtures.Red)},
	}
	got := evalQuery(t, m, `$m/{green}parent::node()`, vars)
	if len(got) != 0 {
		t.Fatalf("green parent of duck = %v, want empty", got)
	}
	// But eve has one.
	vars["m"] = pathexpr.Sequence{pathexpr.NodeItem(m.Node("eve"), fixtures.Red)}
	got = evalQuery(t, m, `$m/{green}parent::node()`, vars)
	if len(got) != 1 || got[0].Node != m.Node("y1950") {
		t.Fatalf("green parent of eve = %v", got)
	}
}

func TestEvalResultOrderIsLocalOrder(t *testing.T) {
	m := fixtures.NewMovieDB()
	got := evalQuery(t, m, `document("x")/{green}descendant::movie/{green}child::votes`, nil)
	// Green tree order: y1950 (eve,14), y1957 (angry,9), y1959 (hot,11).
	want := []string{"14", "9", "11"}
	gotStr := names(got)
	for i := range want {
		if gotStr[i] != want[i] {
			t.Fatalf("order = %v, want %v", gotStr, want)
		}
	}
	for _, it := range got {
		if it.Color != fixtures.Green {
			t.Fatalf("result color = %q, want green", it.Color)
		}
	}
}

func TestEvalAttributes(t *testing.T) {
	m := fixtures.NewMovieDB()
	if _, err := m.DB.SetAttribute(m.Node("eve"), "id", "m1"); err != nil {
		t.Fatal(err)
	}
	got := evalQuery(t, m, `document("x")/{red}descendant::movie[{red}@id = "m1"]/{red}child::name`, nil)
	if len(got) != 1 || pathexpr.ItemString(got[0]) != "All About Eve" {
		t.Fatalf("attr predicate = %v", names(got))
	}
	attrs := evalQuery(t, m, `document("x")/{red}descendant::movie/{red}@id`, nil)
	if len(attrs) != 1 || attrs[0].Node.Kind() != core.KindAttribute {
		t.Fatalf("attribute axis = %v", attrs)
	}
}

func TestEvalPositionalPredicates(t *testing.T) {
	m := fixtures.NewMovieDB()
	first := evalQuery(t, m, `document("x")/{blue}descendant::actor[1]/{blue}child::name`, nil)
	if len(first) != 1 || pathexpr.ItemString(first[0]) != "Bette Davis" {
		t.Fatalf("[1] = %v", names(first))
	}
	last := evalQuery(t, m, `document("x")/{blue}descendant::actor[position() = last()]/{blue}child::name`, nil)
	if len(last) != 1 || pathexpr.ItemString(last[0]) != "Henry Fonda" {
		t.Fatalf("[last()] = %v", names(last))
	}
}

func TestEvalSiblingAxes(t *testing.T) {
	m := fixtures.NewMovieDB()
	vars := map[string]pathexpr.Sequence{
		"a": {pathexpr.NodeItem(m.Node("marilyn"), fixtures.Blue)},
	}
	fs := evalQuery(t, m, `$a/{blue}following-sibling::actor/{blue}child::name`, vars)
	if got := names(fs); len(got) != 2 || got[0] != "Groucho Marx" || got[1] != "Henry Fonda" {
		t.Fatalf("following siblings = %v", got)
	}
	ps := evalQuery(t, m, `$a/{blue}preceding-sibling::actor[1]/{blue}child::name`, vars)
	if got := names(ps); len(got) != 1 || got[0] != "Bette Davis" {
		t.Fatalf("nearest preceding sibling = %v", got)
	}
}

func TestEvalColorInheritance(t *testing.T) {
	m := fixtures.NewMovieDB()
	// Only the first step specifies red; later steps inherit it.
	src := `document("x")/{red}descendant::movie-genre[name = "Comedy"]/movie/name`
	got := names(evalQuery(t, m, src, nil))
	if len(got) != 2 { // eve + hot (direct children of comedy)
		t.Fatalf("inherited-color result = %v", got)
	}
}

func TestEvalNoColorError(t *testing.T) {
	m := fixtures.NewMovieDB()
	e, err := pathexpr.ParseString(`document("x")/descendant::movie`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = pathexpr.Eval(&pathexpr.Env{DB: m.DB}, e)
	if !errors.Is(err, pathexpr.ErrNoColor) {
		t.Fatalf("want ErrNoColor, got %v", err)
	}
	// With a default color it evaluates.
	out, err := pathexpr.Eval(&pathexpr.Env{DB: m.DB, DefaultColor: fixtures.Red}, e)
	if err != nil || len(out) != 4 {
		t.Fatalf("with default color: %v, %d items", err, len(out))
	}
}

func TestEvalUnboundVariable(t *testing.T) {
	m := fixtures.NewMovieDB()
	e, _ := pathexpr.ParseString(`$nope/{red}child::a`)
	_, err := pathexpr.Eval(&pathexpr.Env{DB: m.DB}, e)
	if !errors.Is(err, pathexpr.ErrUnboundVar) {
		t.Fatalf("want ErrUnboundVar, got %v", err)
	}
}

func TestEvalFunctions(t *testing.T) {
	m := fixtures.NewMovieDB()
	cases := []struct {
		src  string
		want string
	}{
		{`count(document("x")/{red}descendant::movie)`, "4"},
		{`count(document("x")/{green}descendant::movie)`, "3"},
		{`string(document("x")/{blue}descendant::actor[1]/{blue}child::name)`, "Bette Davis"},
		{`concat("a", "-", "b")`, "a-b"},
		{`string-length("hello")`, "5"},
		{`sum(document("x")/{green}descendant::votes)`, "34"},
		{`min(document("x")/{green}descendant::votes)`, "9"},
		{`max(document("x")/{green}descendant::votes)`, "14"},
		{`round(avg(document("x")/{green}descendant::votes))`, "11"},
		{`number("12") + 1`, "13"},
		{`floor(3.7)`, "3"},
		{`ceiling(3.2)`, "4"},
		{`starts-with("Oscar Best Movie", "Oscar")`, "true"},
		{`ends-with("Oscar Best Movie", "Movie")`, "true"},
		{`empty(document("x")/{green}descendant::actor)`, "true"},
		{`exists(document("x")/{blue}descendant::actor)`, "true"},
		{`not(true())`, "false"},
		{`count(distinct-values(document("x")/{red}descendant::movie-genre/{red}child::name))`, "3"},
	}
	for _, c := range cases {
		got := evalQuery(t, m, c.src, nil)
		if len(got) != 1 {
			t.Errorf("%s: %d items", c.src, len(got))
			continue
		}
		if s := pathexpr.ItemString(got[0]); s != c.want {
			t.Errorf("%s = %q, want %q", c.src, s, c.want)
		}
	}
}

func TestEvalColorsFunction(t *testing.T) {
	m := fixtures.NewMovieDB()
	vars := map[string]pathexpr.Sequence{
		"m": {pathexpr.NodeItem(m.Node("eve"), fixtures.Red)},
	}
	got := names(evalQuery(t, m, `colors($m)`, vars))
	if len(got) != 2 || got[0] != "green" || got[1] != "red" {
		t.Fatalf("colors($eve) = %v", got)
	}
}

func TestEvalArithmeticAndBooleans(t *testing.T) {
	m := fixtures.NewMovieDB()
	cases := []struct {
		src  string
		want string
	}{
		{`1 + 2 * 3`, "7"},
		{`(1 + 2) * 3`, "9"},
		{`10 div 4`, "2.5"},
		{`10 mod 3`, "1"},
		{`-5 + 2`, "-3"},
		{`1 < 2 and 2 < 3`, "true"},
		{`1 > 2 or 3 >= 3`, "true"},
		{`"abc" != "abd"`, "true"},
		{`"abc" < "abd"`, "true"},
	}
	for _, c := range cases {
		got := evalQuery(t, m, c.src, nil)
		if s := pathexpr.ItemString(got[0]); s != c.want {
			t.Errorf("%s = %q, want %q", c.src, s, c.want)
		}
	}
	// Division by zero.
	e, _ := pathexpr.ParseString(`1 div 0`)
	if _, err := pathexpr.Eval(&pathexpr.Env{DB: m.DB}, e); err == nil {
		t.Fatal("1 div 0 should fail")
	}
}

func TestEvalNodeIdentityComparison(t *testing.T) {
	m := fixtures.NewMovieDB()
	eve := pathexpr.NodeItem(m.Node("eve"), fixtures.Green)
	vars := map[string]pathexpr.Sequence{"m": {eve}}
	// The same node reached through a different (red) hierarchy compares
	// equal by identity.
	got := evalQuery(t, m, `document("x")/{red}descendant::movie[. = $m]`, vars)
	if len(got) != 1 || got[0].Node != m.Node("eve") {
		t.Fatalf("identity comparison = %v", got)
	}
	got = evalQuery(t, m, `document("x")/{red}descendant::movie[. != $m]`, vars)
	if len(got) != 3 {
		t.Fatalf("negated identity = %d items", len(got))
	}
}

func TestEvalTextNodeTest(t *testing.T) {
	m := fixtures.NewMovieDB()
	got := evalQuery(t, m, `document("x")/{blue}descendant::actor[1]/{blue}child::name/{blue}child::text()`, nil)
	if len(got) != 1 || got[0].Node.Kind() != core.KindText {
		t.Fatalf("text() = %v", got)
	}
	if got[0].Node.Value() != "Bette Davis" {
		t.Fatalf("text value = %q", got[0].Node.Value())
	}
}

func TestEvalStepOnAtomicFails(t *testing.T) {
	m := fixtures.NewMovieDB()
	vars := map[string]pathexpr.Sequence{"v": {pathexpr.AtomItem("str")}}
	e, _ := pathexpr.ParseString(`$v/{red}child::a`)
	if _, err := pathexpr.Eval(&pathexpr.Env{DB: m.DB, Vars: vars}, e); !errors.Is(err, pathexpr.ErrType) {
		t.Fatalf("want ErrType, got %v", err)
	}
}

func TestEvalUnknownColorInStep(t *testing.T) {
	m := fixtures.NewMovieDB()
	e, _ := pathexpr.ParseString(`document("x")/{purple}child::a`)
	if _, err := pathexpr.Eval(&pathexpr.Env{DB: m.DB}, e); !errors.Is(err, core.ErrUnknownColor) {
		t.Fatalf("want ErrUnknownColor, got %v", err)
	}
}

func TestEvalUnknownFunction(t *testing.T) {
	m := fixtures.NewMovieDB()
	e, _ := pathexpr.ParseString(`frobnicate(1)`)
	if _, err := pathexpr.Eval(&pathexpr.Env{DB: m.DB}, e); !errors.Is(err, pathexpr.ErrUnknownFunc) {
		t.Fatalf("want ErrUnknownFunc, got %v", err)
	}
}

func TestEvalDescendantOrSelf(t *testing.T) {
	m := fixtures.NewMovieDB()
	vars := map[string]pathexpr.Sequence{
		"g": {pathexpr.NodeItem(m.Node("comedy"), fixtures.Red)},
	}
	got := evalQuery(t, m, `$g/{red}descendant-or-self::movie-genre`, vars)
	if len(got) != 2 { // comedy + slapstick
		t.Fatalf("descendant-or-self = %d", len(got))
	}
	got = evalQuery(t, m, `$g/{red}ancestor-or-self::node()`, vars)
	if len(got) != 3 { // comedy, genres, document
		t.Fatalf("ancestor-or-self = %d", len(got))
	}
}
