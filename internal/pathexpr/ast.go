// Package pathexpr implements MCXQuery colored path expressions (paper
// Section 4.1): XPath-style path expressions whose location steps carry a
// color specification in curly braces, selecting which colored tree of an MCT
// database the step navigates, e.g.
//
//	document("mdb.xml")/{red}descendant::movie-genre[{red}child::name = "Comedy"]
//	$m/{red}child::movie-role/{blue}parent::actor
//
// Both the unabbreviated axis syntax and the common abbreviations ({c}name,
// {c}@attr, ., .., //) are supported. A step that omits its color inherits
// the color of the previous step (or of the evaluation context), which keeps
// single-colored fragments of a query concise.
//
// The package also provides the general-purpose expression language used in
// predicates (comparisons, arithmetic, boolean connectives, and the core
// function library including contains, distinct-values and the dm:colors
// accessor exposed as colors()).
package pathexpr

import (
	"fmt"
	"strings"

	"colorfulxml/internal/core"
)

// Axis enumerates the supported XPath axes.
type Axis uint8

// Supported axes. MCXQuery as defined in the paper conservatively tracks
// XQuery's XPath subset but we also provide the ancestor axes, which the
// paper notes would let query Q3 be a single path expression.
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisAttribute
	AxisFollowingSibling
	AxisPrecedingSibling
)

var axisNames = map[Axis]string{
	AxisChild:            "child",
	AxisDescendant:       "descendant",
	AxisDescendantOrSelf: "descendant-or-self",
	AxisSelf:             "self",
	AxisParent:           "parent",
	AxisAncestor:         "ancestor",
	AxisAncestorOrSelf:   "ancestor-or-self",
	AxisAttribute:        "attribute",
	AxisFollowingSibling: "following-sibling",
	AxisPrecedingSibling: "preceding-sibling",
}

// String returns the axis name as written in queries.
func (a Axis) String() string { return axisNames[a] }

// axisByName resolves an axis name, reporting whether it exists.
func axisByName(s string) (Axis, bool) {
	for a, n := range axisNames {
		if n == s {
			return a, true
		}
	}
	return 0, false
}

// TestKind enumerates node test kinds.
type TestKind uint8

// Node test kinds.
const (
	TestName    TestKind = iota // element/attribute by name
	TestStar                    // *
	TestNode                    // node()
	TestText                    // text()
	TestComment                 // comment()
	TestPI                      // processing-instruction()
)

// NodeTest filters the nodes selected by an axis.
type NodeTest struct {
	Kind TestKind
	Name string // for TestName (and optional PI target)
}

func (t NodeTest) String() string {
	switch t.Kind {
	case TestName:
		return t.Name
	case TestStar:
		return "*"
	case TestNode:
		return "node()"
	case TestText:
		return "text()"
	case TestComment:
		return "comment()"
	case TestPI:
		if t.Name != "" {
			return fmt.Sprintf("processing-instruction(%q)", t.Name)
		}
		return "processing-instruction()"
	default:
		return "?"
	}
}

// Step is one colored location step.
type Step struct {
	Color core.Color // empty means: inherit the context color
	Axis  Axis
	Test  NodeTest
	Preds []Expr
}

func (s *Step) String() string {
	var b strings.Builder
	if s.Color != "" {
		fmt.Fprintf(&b, "{%s}", s.Color)
	}
	b.WriteString(s.Axis.String())
	b.WriteString("::")
	b.WriteString(s.Test.String())
	for _, p := range s.Preds {
		fmt.Fprintf(&b, "[%s]", p)
	}
	return b.String()
}

// Expr is any MCXQuery expression node.
type Expr interface {
	fmt.Stringer
	ExprNode()
}

// PathExpr is a (possibly rooted) path expression.
type PathExpr struct {
	// Doc is the document("...") root, if the path is document-rooted.
	Doc string
	// FromRoot marks a path beginning with "/" (document-rooted without an
	// explicit document() call).
	FromRoot bool
	// Var is the starting variable for $v/step/... paths.
	Var string
	// Steps are the location steps; may be empty for a bare $v or document().
	Steps []*Step
}

func (*PathExpr) ExprNode() {}

func (p *PathExpr) String() string {
	var b strings.Builder
	switch {
	case p.Doc != "":
		fmt.Fprintf(&b, "document(%q)", p.Doc)
	case p.Var != "":
		fmt.Fprintf(&b, "$%s", p.Var)
	case p.FromRoot:
		// leading slash emitted below
	}
	for i, s := range p.Steps {
		if i > 0 || p.Doc != "" || p.Var != "" || p.FromRoot {
			b.WriteString("/")
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// Literal is a string or numeric constant.
type Literal struct{ Val any }

func (*Literal) ExprNode() {}

func (l *Literal) String() string {
	if s, ok := l.Val.(string); ok {
		return fmt.Sprintf("%q", s)
	}
	return fmt.Sprint(l.Val)
}

// VarRef references a bound variable $name.
type VarRef struct{ Name string }

func (*VarRef) ExprNode() {}

func (v *VarRef) String() string { return "$" + v.Name }

// ContextItem is the "." expression.
type ContextItem struct{}

func (*ContextItem) ExprNode() {}

func (*ContextItem) String() string { return "." }

// BinaryOp enumerates binary operators.
type BinaryOp uint8

// Binary operators.
const (
	OpOr BinaryOp = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

var opNames = map[BinaryOp]string{
	OpOr: "or", OpAnd: "and",
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "div", OpMod: "mod",
}

// Binary is a binary operation.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

func (*Binary) ExprNode() {}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, opNames[b.Op], b.R)
}

// Unary is unary minus.
type Unary struct{ X Expr }

func (*Unary) ExprNode() {}

func (u *Unary) String() string { return fmt.Sprintf("(-%s)", u.X) }

// Call is a function call.
type Call struct {
	Name string
	Args []Expr
}

func (*Call) ExprNode() {}

func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(args, ", "))
}

// CountSteps returns the number of location steps in the expression tree,
// used by the query-complexity experiments (Figures 11 and 12 count path
// expressions; steps are reported by analysis tooling).
func CountSteps(e Expr) int {
	n := 0
	Walk(e, func(x Expr) {
		if p, ok := x.(*PathExpr); ok {
			n += len(p.Steps)
		}
	})
	return n
}

// CountPaths returns the number of path expressions in the expression tree.
func CountPaths(e Expr) int {
	n := 0
	Walk(e, func(x Expr) {
		if _, ok := x.(*PathExpr); ok {
			n++
		}
	})
	return n
}

// ExtExpr is implemented by extension expression nodes defined outside this
// package (FLWOR expressions, element constructors) so that Walk can descend
// into their sub-expressions generically.
type ExtExpr interface {
	Expr
	// Subexprs returns the direct sub-expressions of the node.
	Subexprs() []Expr
}

// Walk visits every expression node in the tree rooted at e, including
// predicates inside path steps and extension nodes' sub-expressions.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *PathExpr:
		for _, s := range x.Steps {
			for _, p := range s.Preds {
				Walk(p, fn)
			}
		}
	case *Binary:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Unary:
		Walk(x.X, fn)
	case *Call:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case ExtExpr:
		for _, s := range x.Subexprs() {
			Walk(s, fn)
		}
	}
}
