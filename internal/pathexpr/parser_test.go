package pathexpr

import (
	"strings"
	"testing"
)

func mustParseExpr(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", src, err)
	}
	return e
}

func TestParseColoredSteps(t *testing.T) {
	e := mustParseExpr(t, `document("mdb.xml")/{red}descendant::movie-genre[{red}child::name = "Comedy"]`)
	p, ok := e.(*PathExpr)
	if !ok {
		t.Fatalf("want *PathExpr, got %T", e)
	}
	if p.Doc != "mdb.xml" {
		t.Fatalf("Doc = %q", p.Doc)
	}
	if len(p.Steps) != 1 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	s := p.Steps[0]
	if s.Color != "red" || s.Axis != AxisDescendant || s.Test.Name != "movie-genre" {
		t.Fatalf("step = %+v", s)
	}
	if len(s.Preds) != 1 {
		t.Fatalf("preds = %d", len(s.Preds))
	}
	b, ok := s.Preds[0].(*Binary)
	if !ok || b.Op != OpEq {
		t.Fatalf("pred = %+v", s.Preds[0])
	}
	inner, ok := b.L.(*PathExpr)
	if !ok || inner.Steps[0].Color != "red" || inner.Steps[0].Axis != AxisChild {
		t.Fatalf("pred path = %+v", b.L)
	}
}

func TestParseMultiColorPath(t *testing.T) {
	// Query Q4's path: colors change across steps.
	src := `document("mdb.xml")/{green}descendant::movie-award/{green}descendant::movie[{green}child::votes > 10]/{red}child::movie-role/{blue}parent::actor`
	p := mustParseExpr(t, src).(*PathExpr)
	if len(p.Steps) != 4 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	wantColors := []string{"green", "green", "red", "blue"}
	wantAxes := []Axis{AxisDescendant, AxisDescendant, AxisChild, AxisParent}
	for i, s := range p.Steps {
		if string(s.Color) != wantColors[i] || s.Axis != wantAxes[i] {
			t.Errorf("step %d = %v (color %q)", i, s.Axis, s.Color)
		}
	}
}

func TestParseAbbreviations(t *testing.T) {
	p := mustParseExpr(t, `$m/{red}name`).(*PathExpr)
	if p.Var != "m" || p.Steps[0].Axis != AxisChild || p.Steps[0].Test.Name != "name" {
		t.Fatalf("parsed: %+v", p)
	}
	p = mustParseExpr(t, `$m/{red}@id`).(*PathExpr)
	if p.Steps[0].Axis != AxisAttribute || p.Steps[0].Test.Name != "id" {
		t.Fatalf("@abbrev: %+v", p.Steps[0])
	}
	p = mustParseExpr(t, `$m/{red}..`).(*PathExpr)
	if p.Steps[0].Axis != AxisParent || p.Steps[0].Test.Kind != TestNode {
		t.Fatalf("..: %+v", p.Steps[0])
	}
	e := mustParseExpr(t, `.`)
	if _, ok := e.(*ContextItem); !ok {
		t.Fatalf(". = %T", e)
	}
	p = mustParseExpr(t, `./{red}child::name`).(*PathExpr)
	if p.Steps[0].Axis != AxisSelf || p.Steps[1].Axis != AxisChild {
		t.Fatalf("./: %+v", p)
	}
	p = mustParseExpr(t, `$m/{red}*`).(*PathExpr)
	if p.Steps[0].Test.Kind != TestStar {
		t.Fatalf("*: %+v", p.Steps[0])
	}
}

func TestParseDoubleSlash(t *testing.T) {
	p := mustParseExpr(t, `document("x")//{red}movie`).(*PathExpr)
	if len(p.Steps) != 2 {
		t.Fatalf("steps = %d, want descendant-or-self + child", len(p.Steps))
	}
	if p.Steps[0].Axis != AxisDescendantOrSelf || p.Steps[0].Test.Kind != TestNode {
		t.Fatalf("implicit step = %+v", p.Steps[0])
	}
	if p.Steps[0].Color != "red" {
		t.Fatalf("implicit step color = %q, want inherited red", p.Steps[0].Color)
	}
	p = mustParseExpr(t, `$m//{blue}actor`).(*PathExpr)
	if len(p.Steps) != 2 || p.Steps[0].Color != "blue" {
		t.Fatalf("var //: %+v", p)
	}
}

func TestParseNodeTests(t *testing.T) {
	cases := map[string]TestKind{
		`$m/{red}child::node()`:                   TestNode,
		`$m/{red}child::text()`:                   TestText,
		`$m/{red}child::comment()`:                TestComment,
		`$m/{red}child::processing-instruction()`: TestPI,
		`$m/{red}child::*`:                        TestStar,
	}
	for src, want := range cases {
		p := mustParseExpr(t, src).(*PathExpr)
		if p.Steps[0].Test.Kind != want {
			t.Errorf("%s: kind = %v, want %v", src, p.Steps[0].Test.Kind, want)
		}
	}
	p := mustParseExpr(t, `$m/{red}child::processing-instruction("tgt")`).(*PathExpr)
	if p.Steps[0].Test.Name != "tgt" {
		t.Fatalf("pi target = %q", p.Steps[0].Test.Name)
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	e := mustParseExpr(t, `1 + 2 * 3 = 7 and not(false())`)
	b, ok := e.(*Binary)
	if !ok || b.Op != OpAnd {
		t.Fatalf("top = %+v", e)
	}
	cmp := b.L.(*Binary)
	if cmp.Op != OpEq {
		t.Fatalf("left of and = %v", cmp.Op)
	}
	add := cmp.L.(*Binary)
	if add.Op != OpAdd {
		t.Fatalf("add = %v", add.Op)
	}
	mul := add.R.(*Binary)
	if mul.Op != OpMul {
		t.Fatalf("mul = %v", mul.Op)
	}
}

func TestParseFunctionCalls(t *testing.T) {
	e := mustParseExpr(t, `contains($m/{red}child::name, "Eve")`)
	c, ok := e.(*Call)
	if !ok || c.Name != "contains" || len(c.Args) != 2 {
		t.Fatalf("call = %+v", e)
	}
	e = mustParseExpr(t, `count(document("x")/{red}descendant::movie) > 2`)
	if b, ok := e.(*Binary); !ok || b.Op != OpGt {
		t.Fatalf("count cmp = %+v", e)
	}
}

func TestParsePositionalPredicate(t *testing.T) {
	p := mustParseExpr(t, `$m/{red}child::movie[2]`).(*PathExpr)
	lit, ok := p.Steps[0].Preds[0].(*Literal)
	if !ok || lit.Val != int64(2) {
		t.Fatalf("positional pred = %+v", p.Steps[0].Preds[0])
	}
	p = mustParseExpr(t, `$m/{red}child::movie[position() = last()]`).(*PathExpr)
	if len(p.Steps[0].Preds) != 1 {
		t.Fatal("pred missing")
	}
}

func TestParseXQueryComments(t *testing.T) {
	e := mustParseExpr(t, `(: pick a movie :) $m/{red}child::name (: done :)`)
	if _, ok := e.(*PathExpr); !ok {
		t.Fatalf("with comments: %T", e)
	}
}

func TestParseStringColorLiteral(t *testing.T) {
	p := mustParseExpr(t, `$m/{"dark-red"}child::name`).(*PathExpr)
	if p.Steps[0].Color != "dark-red" {
		t.Fatalf("quoted color = %q", p.Steps[0].Color)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`$`,
		`$m/`,
		`$m/{`,
		`$m/{red`,
		`$m/{red}`,
		`$m/{red}child::`,
		`$m/{3}child::a`,
		`document(x)/{red}child::a`,
		`"unterminated`,
		`$m/{red}child::a[`,
		`$m/{red}child::a[1`,
		`1 +`,
		`foo(1,`,
		`$m $n`,
		`#`,
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) should fail", src)
		}
	}
}

func TestParsePathRejectsNonPath(t *testing.T) {
	if _, err := ParsePath(`1 + 2`); err == nil {
		t.Fatal("ParsePath of arithmetic should fail")
	}
	p, err := ParsePath(`document("x")/{red}child::a`)
	if err != nil || p.Doc != "x" {
		t.Fatalf("ParsePath: %v %+v", err, p)
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		`document("mdb.xml")/{red}descendant::movie-genre[{red}child::name = "Comedy"]/{red}descendant::movie`,
		`$m/{green}child::votes`,
		`$a/{blue}parent::actor[{blue}child::name = "Bette Davis"]`,
	}
	for _, src := range srcs {
		e := mustParseExpr(t, src)
		rendered := e.String()
		e2, err := ParseString(rendered)
		if err != nil {
			t.Fatalf("reparse %q: %v", rendered, err)
		}
		if e2.String() != rendered {
			t.Fatalf("unstable render: %q vs %q", e2.String(), rendered)
		}
	}
}

func TestCountPathsAndSteps(t *testing.T) {
	e := mustParseExpr(t, `contains($m/{red}child::name, "Eve") and $m/{green}child::votes > 10`)
	if got := CountPaths(e); got != 2 {
		t.Fatalf("CountPaths = %d, want 2", got)
	}
	if got := CountSteps(e); got != 2 {
		t.Fatalf("CountSteps = %d, want 2", got)
	}
	// Predicates count too.
	e = mustParseExpr(t, `document("x")/{red}descendant::movie[{red}child::name = "Eve"]`)
	if got := CountPaths(e); got != 2 {
		t.Fatalf("CountPaths with pred = %d, want 2", got)
	}
	if got := CountSteps(e); got != 2 {
		t.Fatalf("CountSteps with pred = %d", got)
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := ParseString(`$m/{red}child::a[`)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error should carry offset: %v", err)
	}
}
