package pathexpr

import "strconv"

// TokenSource supplies tokens to the parser. The simple implementation is a
// pre-lexed slice; the mcxquery package provides a modal lexer that switches
// between expression tokens and raw element-constructor content.
type TokenSource interface {
	// Peek returns the current token without consuming it.
	Peek() Token
	// PeekAt returns the token k positions ahead (0 == Peek).
	PeekAt(k int) Token
	// Advance consumes and returns the current token.
	Advance() Token
}

// sliceSource is a TokenSource over a pre-lexed token slice ending in TokEOF.
type sliceSource struct {
	toks []Token
	pos  int
}

func (s *sliceSource) Peek() Token { return s.toks[s.pos] }

func (s *sliceSource) PeekAt(k int) Token {
	if s.pos+k >= len(s.toks) {
		return s.toks[len(s.toks)-1]
	}
	return s.toks[s.pos+k]
}

func (s *sliceSource) Advance() Token {
	t := s.toks[s.pos]
	if s.pos < len(s.toks)-1 {
		s.pos++
	}
	return t
}

// Parser is a recursive-descent parser for MCXQuery expressions. It is shared
// with the mcxquery package, which supplies a modal token source and an
// extension hook for FLWOR expressions and element constructors.
type Parser struct {
	src TokenSource
	// Ext, when set, is consulted at primary-expression position before the
	// base grammar. It returns (expr, true, nil) when it consumed an
	// extension production, (nil, false, nil) to fall through.
	Ext func(p *Parser) (Expr, bool, error)
}

// NewParser creates a parser over a token slice ending in TokEOF.
func NewParser(toks []Token) *Parser { return &Parser{src: &sliceSource{toks: toks}} }

// NewParserSource creates a parser over a custom token source.
func NewParserSource(src TokenSource) *Parser { return &Parser{src: src} }

// ParseString parses a complete expression from source text; trailing input
// is an error.
func ParseString(src string) (Expr, error) {
	toks, err := Tokens(src)
	if err != nil {
		return nil, err
	}
	p := NewParser(toks)
	e, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	if p.Peek().Kind != TokEOF {
		return nil, Errf(p.Peek().Pos, "unexpected %s after expression", p.Peek())
	}
	return e, nil
}

// ParsePath parses a complete path expression from source text.
func ParsePath(src string) (*PathExpr, error) {
	e, err := ParseString(src)
	if err != nil {
		return nil, err
	}
	pe, ok := e.(*PathExpr)
	if !ok {
		return nil, Errf(0, "expression is not a path expression")
	}
	return pe, nil
}

// Peek returns the current token without consuming it.
func (p *Parser) Peek() Token { return p.src.Peek() }

// PeekAt returns the token k positions ahead.
func (p *Parser) PeekAt(k int) Token { return p.src.PeekAt(k) }

// Advance consumes and returns the current token.
func (p *Parser) Advance() Token { return p.src.Advance() }

// Expect consumes a token of the given kind or fails.
func (p *Parser) Expect(k TokKind) (Token, error) {
	t := p.Peek()
	if t.Kind != k {
		return Token{}, Errf(t.Pos, "expected token kind %d, found %s", k, t)
	}
	return p.Advance(), nil
}

// ExpectIdent consumes an identifier with the exact given text.
func (p *Parser) ExpectIdent(text string) error {
	t := p.Peek()
	if t.Kind != TokIdent || t.Text != text {
		return Errf(t.Pos, "expected %q, found %s", text, t)
	}
	p.Advance()
	return nil
}

// isIdent reports whether the current token is the identifier text.
func (p *Parser) isIdent(text string) bool {
	t := p.Peek()
	return t.Kind == TokIdent && t.Text == text
}

// ParseExpr parses a full expression (lowest precedence: or).
func (p *Parser) ParseExpr() (Expr, error) {
	return p.parseOr()
}

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isIdent("or") {
		p.Advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.isIdent("and") {
		p.Advance()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	var op BinaryOp
	switch p.Peek().Kind {
	case TokEq:
		op = OpEq
	case TokNe:
		op = OpNe
	case TokLt:
		op = OpLt
	case TokLe:
		op = OpLe
	case TokGt:
		op = OpGt
	case TokGe:
		op = OpGe
	default:
		return l, nil
	}
	p.Advance()
	r, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return &Binary{Op: op, L: l, R: r}, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch p.Peek().Kind {
		case TokPlus:
			op = OpAdd
		case TokMinus:
			op = OpSub
		default:
			return l, nil
		}
		p.Advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.Peek().Kind == TokStar:
			op = OpMul
		case p.isIdent("div"):
			op = OpDiv
		case p.isIdent("mod"):
			op = OpMod
		default:
			return l, nil
		}
		p.Advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.Peek().Kind == TokMinus {
		p.Advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{X: x}, nil
	}
	return p.parsePrimary()
}

// nodeTypeNames are names that, followed by '(', denote node tests rather
// than function calls.
var nodeTypeNames = map[string]bool{
	"node": true, "text": true, "comment": true, "processing-instruction": true,
}

func (p *Parser) parsePrimary() (Expr, error) {
	if p.Ext != nil {
		e, ok, err := p.Ext(p)
		if err != nil {
			return nil, err
		}
		if ok {
			return e, nil
		}
	}
	t := p.Peek()
	switch t.Kind {
	case TokString:
		p.Advance()
		return &Literal{Val: t.Text}, nil
	case TokNumber:
		p.Advance()
		if f, err := strconv.ParseInt(t.Text, 10, 64); err == nil {
			return &Literal{Val: f}, nil
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, Errf(t.Pos, "bad number %q", t.Text)
		}
		return &Literal{Val: f}, nil
	case TokLParen:
		p.Advance()
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.Expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokVar:
		p.Advance()
		if p.Peek().Kind == TokSlash || p.Peek().Kind == TokSlashSlash {
			pe := &PathExpr{Var: t.Text}
			if err := p.parseSteps(pe); err != nil {
				return nil, err
			}
			return pe, nil
		}
		return &VarRef{Name: t.Text}, nil
	case TokSlash, TokSlashSlash:
		pe := &PathExpr{FromRoot: true}
		if err := p.parseSteps(pe); err != nil {
			return nil, err
		}
		return pe, nil
	case TokDot:
		// "." alone, or the start of a relative path "./..."
		if p.PeekAt(1).Kind == TokSlash || p.PeekAt(1).Kind == TokSlashSlash {
			return p.parseRelativePath()
		}
		p.Advance()
		return &ContextItem{}, nil
	case TokDotDot, TokLBrace, TokAt, TokStar:
		return p.parseRelativePath()
	case TokIdent:
		// document("...")/steps is a rooted path; other ident+'(' is a
		// function call unless it is a node-type test.
		if t.Text == "document" && p.PeekAt(1).Kind == TokLParen {
			p.Advance()
			p.Advance()
			str, err := p.Expect(TokString)
			if err != nil {
				return nil, err
			}
			if _, err := p.Expect(TokRParen); err != nil {
				return nil, err
			}
			pe := &PathExpr{Doc: str.Text}
			if p.Peek().Kind == TokSlash || p.Peek().Kind == TokSlashSlash {
				if err := p.parseSteps(pe); err != nil {
					return nil, err
				}
			}
			return pe, nil
		}
		if p.PeekAt(1).Kind == TokLParen && !nodeTypeNames[t.Text] {
			return p.parseCall()
		}
		return p.parseRelativePath()
	}
	return nil, Errf(t.Pos, "unexpected %s", t)
}

func (p *Parser) parseCall() (Expr, error) {
	name, err := p.Expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.Expect(TokLParen); err != nil {
		return nil, err
	}
	call := &Call{Name: name.Text}
	if p.Peek().Kind != TokRParen {
		for {
			arg, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if p.Peek().Kind != TokComma {
				break
			}
			p.Advance()
		}
	}
	if _, err := p.Expect(TokRParen); err != nil {
		return nil, err
	}
	return call, nil
}

// parseRelativePath parses a path that starts with a step.
func (p *Parser) parseRelativePath() (Expr, error) {
	pe := &PathExpr{}
	step, err := p.parseStep()
	if err != nil {
		return nil, err
	}
	pe.Steps = append(pe.Steps, step)
	for p.Peek().Kind == TokSlash || p.Peek().Kind == TokSlashSlash {
		if err := p.parseOneSeparatorAndStep(pe); err != nil {
			return nil, err
		}
	}
	return pe, nil
}

// parseSteps parses ("/" step | "//" step)+ into pe.
func (p *Parser) parseSteps(pe *PathExpr) error {
	for p.Peek().Kind == TokSlash || p.Peek().Kind == TokSlashSlash {
		if err := p.parseOneSeparatorAndStep(pe); err != nil {
			return err
		}
	}
	return nil
}

func (p *Parser) parseOneSeparatorAndStep(pe *PathExpr) error {
	sep := p.Advance()
	step, err := p.parseStep()
	if err != nil {
		return err
	}
	if sep.Kind == TokSlashSlash {
		// a//b  ==  a/descendant-or-self::node()/b, with the implicit step
		// running in b's color so the abbreviation stays single-colored.
		pe.Steps = append(pe.Steps, &Step{
			Color: step.Color,
			Axis:  AxisDescendantOrSelf,
			Test:  NodeTest{Kind: TestNode},
		})
	}
	pe.Steps = append(pe.Steps, step)
	return nil
}

// parseStep parses one location step: optional {color}, then an axis::test,
// an abbreviation (@attr, ., .., name, *), and trailing predicates.
func (p *Parser) parseStep() (*Step, error) {
	step := &Step{}
	if p.Peek().Kind == TokLBrace {
		p.Advance()
		var colorText string
		switch t := p.Peek(); t.Kind {
		case TokIdent, TokString:
			colorText = t.Text
			p.Advance()
		default:
			return nil, Errf(t.Pos, "expected color name, found %s", t)
		}
		if _, err := p.Expect(TokRBrace); err != nil {
			return nil, err
		}
		step.Color = coreColor(colorText)
	}
	t := p.Peek()
	switch t.Kind {
	case TokDot:
		p.Advance()
		step.Axis = AxisSelf
		step.Test = NodeTest{Kind: TestNode}
	case TokDotDot:
		p.Advance()
		step.Axis = AxisParent
		step.Test = NodeTest{Kind: TestNode}
	case TokAt:
		p.Advance()
		step.Axis = AxisAttribute
		test, err := p.parseNodeTest()
		if err != nil {
			return nil, err
		}
		step.Test = test
	case TokStar:
		p.Advance()
		step.Axis = AxisChild
		step.Test = NodeTest{Kind: TestStar}
	case TokIdent:
		if a, ok := axisByName(t.Text); ok && p.PeekAt(1).Kind == TokAxis {
			p.Advance()
			p.Advance()
			step.Axis = a
			test, err := p.parseNodeTest()
			if err != nil {
				return nil, err
			}
			step.Test = test
		} else {
			step.Axis = AxisChild
			test, err := p.parseNodeTest()
			if err != nil {
				return nil, err
			}
			step.Test = test
		}
	default:
		return nil, Errf(t.Pos, "expected location step, found %s", t)
	}
	for p.Peek().Kind == TokLBracket {
		p.Advance()
		pred, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.Expect(TokRBracket); err != nil {
			return nil, err
		}
		step.Preds = append(step.Preds, pred)
	}
	return step, nil
}

func (p *Parser) parseNodeTest() (NodeTest, error) {
	t := p.Peek()
	switch t.Kind {
	case TokStar:
		p.Advance()
		return NodeTest{Kind: TestStar}, nil
	case TokIdent:
		p.Advance()
		if nodeTypeNames[t.Text] && p.Peek().Kind == TokLParen {
			p.Advance()
			var name string
			if p.Peek().Kind == TokString {
				name = p.Advance().Text
			}
			if _, err := p.Expect(TokRParen); err != nil {
				return NodeTest{}, err
			}
			switch t.Text {
			case "node":
				return NodeTest{Kind: TestNode}, nil
			case "text":
				return NodeTest{Kind: TestText}, nil
			case "comment":
				return NodeTest{Kind: TestComment}, nil
			case "processing-instruction":
				return NodeTest{Kind: TestPI, Name: name}, nil
			}
		}
		return NodeTest{Kind: TestName, Name: t.Text}, nil
	default:
		return NodeTest{}, Errf(t.Pos, "expected node test, found %s", t)
	}
}
