package pathexpr

import (
	"errors"
	"fmt"

	"colorfulxml/internal/core"
)

func coreColor(s string) core.Color { return core.Color(s) }

// Item is one item of an MCXQuery sequence: either a node together with the
// color under which it was selected (the color of the final location step
// that produced it), or an atomic value (string, int64, float64 or bool).
type Item struct {
	Node  *core.Node
	Color core.Color
	Atom  any
}

// NodeItem builds a node item.
func NodeItem(n *core.Node, c core.Color) Item { return Item{Node: n, Color: c} }

// AtomItem builds an atomic item.
func AtomItem(v any) Item { return Item{Atom: v} }

// IsNode reports whether the item is a node item.
func (it Item) IsNode() bool { return it.Node != nil }

// Sequence is an ordered sequence of items, the universal value of MCXQuery
// evaluation.
type Sequence []Item

// Nodes extracts the node pointers of all node items.
func (s Sequence) Nodes() []*core.Node {
	out := make([]*core.Node, 0, len(s))
	for _, it := range s {
		if it.Node != nil {
			out = append(out, it.Node)
		}
	}
	return out
}

// Env is the static evaluation environment: the database, variable bindings,
// and an optional default color used when a path's first step omits its
// color and no context color is available.
type Env struct {
	DB           *core.Database
	Vars         map[string]Sequence
	DefaultColor core.Color
	// Ext, when set, evaluates extension expressions (FLWOR, constructors)
	// and extension functions (createColor, createCopy) that this package
	// does not know. It receives the dynamic context item and positional
	// context and reports ok=false to fall through to the default error.
	Ext func(env *Env, e Expr, item Item, pos, size int) (Sequence, bool, error)
}

// Bind returns a copy of the environment with an additional variable bound.
// The receiver is unchanged, so environments can be shared across FLWOR
// iterations.
func (e *Env) Bind(name string, val Sequence) *Env {
	vars := make(map[string]Sequence, len(e.Vars)+1)
	for k, v := range e.Vars {
		vars[k] = v
	}
	vars[name] = val
	return &Env{DB: e.DB, Vars: vars, DefaultColor: e.DefaultColor, Ext: e.Ext}
}

// Evaluation errors.
var (
	// ErrNoColor: a location step has no color and none can be inherited
	// from its context (Section 4.1 requires color disambiguation).
	ErrNoColor = errors.New("location step has no color and no context color")
	// ErrUnboundVar: reference to a variable with no binding.
	ErrUnboundVar = errors.New("unbound variable")
	// ErrType: operand has an unsupported type for the operation.
	ErrType = errors.New("type error")
	// ErrUnknownFunc: call to an undefined function.
	ErrUnknownFunc = errors.New("unknown function")
)

// evalCtx is the dynamic context of one evaluation: the context item, its
// color, and the positional context for predicates.
type evalCtx struct {
	env  *Env
	item Item
	pos  int // 1-based position(), 0 when absent
	size int // last(), 0 when absent
}

// Eval evaluates an expression with no context item (suitable for absolute
// paths and variable-rooted paths).
func Eval(env *Env, e Expr) (Sequence, error) {
	return evalExpr(evalCtx{env: env}, e)
}

// EvalWith evaluates an expression with the given context node and color.
func EvalWith(env *Env, e Expr, node *core.Node, color core.Color) (Sequence, error) {
	return evalExpr(evalCtx{env: env, item: NodeItem(node, color)}, e)
}

// EvalItem evaluates an expression with an explicit dynamic context (item
// plus positional context). Extension evaluators use it to resume evaluation
// of sub-expressions with the context they received.
func EvalItem(env *Env, e Expr, item Item, pos, size int) (Sequence, error) {
	return evalExpr(evalCtx{env: env, item: item, pos: pos, size: size}, e)
}

func evalExpr(ctx evalCtx, e Expr) (Sequence, error) {
	switch x := e.(type) {
	case *Literal:
		return Sequence{AtomItem(x.Val)}, nil
	case *VarRef:
		v, ok := ctx.env.Vars[x.Name]
		if !ok {
			return nil, fmt.Errorf("pathexpr: $%s: %w", x.Name, ErrUnboundVar)
		}
		return v, nil
	case *ContextItem:
		if ctx.item.Node == nil && ctx.item.Atom == nil {
			return nil, fmt.Errorf("pathexpr: '.' with no context item")
		}
		return Sequence{ctx.item}, nil
	case *Unary:
		v, err := evalExpr(ctx, x.X)
		if err != nil {
			return nil, err
		}
		f, err := toNumber(v)
		if err != nil {
			return nil, err
		}
		return Sequence{AtomItem(-f)}, nil
	case *Binary:
		return evalBinary(ctx, x)
	case *Call:
		return evalCall(ctx, x)
	case *PathExpr:
		return evalPath(ctx, x)
	default:
		if ctx.env.Ext != nil {
			seq, ok, err := ctx.env.Ext(ctx.env, e, ctx.item, ctx.pos, ctx.size)
			if ok || err != nil {
				return seq, err
			}
		}
		return nil, fmt.Errorf("pathexpr: cannot evaluate %T", e)
	}
}

// evalPath evaluates a colored path expression. The result is deduplicated
// and sorted by local order in the color of the final step (Section 4.1).
func evalPath(ctx evalCtx, p *PathExpr) (Sequence, error) {
	db := ctx.env.DB
	var cur Sequence
	inherited := ctx.env.DefaultColor
	switch {
	case p.Doc != "" || p.FromRoot:
		cur = Sequence{NodeItem(db.Document(), "")}
	case p.Var != "":
		v, ok := ctx.env.Vars[p.Var]
		if !ok {
			return nil, fmt.Errorf("pathexpr: $%s: %w", p.Var, ErrUnboundVar)
		}
		cur = v
	default:
		if ctx.item.Node == nil {
			return nil, fmt.Errorf("pathexpr: relative path with no context node")
		}
		cur = Sequence{ctx.item}
		if ctx.item.Color != "" {
			inherited = ctx.item.Color
		}
	}
	if len(p.Steps) == 0 {
		return cur, nil
	}
	for _, step := range p.Steps {
		color := step.Color
		if color == "" {
			// Inherit: prefer the color items were selected under.
			if len(cur) > 0 && cur[0].Color != "" {
				color = cur[0].Color
			} else {
				color = inherited
			}
		}
		if color == "" {
			return nil, fmt.Errorf("pathexpr: step %s: %w", step, ErrNoColor)
		}
		if !db.HasColor(color) {
			return nil, fmt.Errorf("pathexpr: step %s: color %q: %w", step, color, core.ErrUnknownColor)
		}
		inherited = color
		var next []*core.Node
		seen := map[core.NodeID]bool{}
		for _, it := range cur {
			if it.Node == nil {
				return nil, fmt.Errorf("pathexpr: step %s applied to atomic value: %w", step, ErrType)
			}
			cands := axisNodes(it.Node, step.Axis, color)
			cands = filterTest(cands, step.Test, step.Axis)
			for _, pred := range step.Preds {
				filtered, err := applyPredicate(ctx.env, cands, pred, color)
				if err != nil {
					return nil, err
				}
				cands = filtered
			}
			for _, n := range cands {
				if !seen[n.ID()] {
					seen[n.ID()] = true
					next = append(next, n)
				}
			}
		}
		db.SortLocal(next, color)
		cur = make(Sequence, len(next))
		for i, n := range next {
			cur[i] = NodeItem(n, color)
		}
	}
	return cur, nil
}

// axisNodes returns the nodes reachable from n along the axis within the
// colored tree c, in axis order (reverse axes are nearest-first, matching
// XPath proximity positions).
func axisNodes(n *core.Node, a Axis, c core.Color) []*core.Node {
	switch a {
	case AxisChild:
		return core.Children(n, c)
	case AxisDescendant:
		return core.Descendants(n, c)
	case AxisDescendantOrSelf:
		if !n.HasColor(c) {
			return nil
		}
		return append([]*core.Node{n}, core.Descendants(n, c)...)
	case AxisSelf:
		if !n.HasColor(c) {
			return nil
		}
		return []*core.Node{n}
	case AxisParent:
		if p := core.Parent(n, c); p != nil {
			return []*core.Node{p}
		}
		return nil
	case AxisAncestor:
		var out []*core.Node
		for p := core.Parent(n, c); p != nil; p = core.Parent(p, c) {
			out = append(out, p)
		}
		return out
	case AxisAncestorOrSelf:
		if !n.HasColor(c) {
			return nil
		}
		out := []*core.Node{n}
		for p := core.Parent(n, c); p != nil; p = core.Parent(p, c) {
			out = append(out, p)
		}
		return out
	case AxisAttribute:
		if !n.HasColor(c) {
			return nil
		}
		return n.Attributes()
	case AxisFollowingSibling:
		return core.FollowingSiblings(n, c)
	case AxisPrecedingSibling:
		return core.PrecedingSiblings(n, c)
	default:
		return nil
	}
}

// filterTest applies the node test. On the attribute axis, name tests match
// attribute names; elsewhere they match element names.
func filterTest(nodes []*core.Node, t NodeTest, a Axis) []*core.Node {
	out := nodes[:0:0]
	for _, n := range nodes {
		ok := false
		switch t.Kind {
		case TestName:
			if a == AxisAttribute {
				ok = n.Kind() == core.KindAttribute && n.Name() == t.Name
			} else {
				ok = n.Kind() == core.KindElement && n.Name() == t.Name
			}
		case TestStar:
			if a == AxisAttribute {
				ok = n.Kind() == core.KindAttribute
			} else {
				ok = n.Kind() == core.KindElement
			}
		case TestNode:
			ok = true
		case TestText:
			ok = n.Kind() == core.KindText
		case TestComment:
			ok = n.Kind() == core.KindComment
		case TestPI:
			ok = n.Kind() == core.KindPI && (t.Name == "" || n.Name() == t.Name)
		}
		if ok {
			out = append(out, n)
		}
	}
	return out
}

// applyPredicate filters candidates by a predicate, providing XPath
// positional semantics: a numeric predicate value selects by position.
func applyPredicate(env *Env, cands []*core.Node, pred Expr, c core.Color) ([]*core.Node, error) {
	out := cands[:0:0]
	size := len(cands)
	for i, n := range cands {
		pctx := evalCtx{env: env, item: NodeItem(n, c), pos: i + 1, size: size}
		v, err := evalExpr(pctx, pred)
		if err != nil {
			return nil, err
		}
		keep, err := predicateTruth(v, i+1)
		if err != nil {
			return nil, err
		}
		if keep {
			out = append(out, n)
		}
	}
	return out, nil
}

// predicateTruth converts a predicate value: a single numeric item selects by
// position; anything else uses the effective boolean value.
func predicateTruth(v Sequence, pos int) (bool, error) {
	if len(v) == 1 && v[0].Node == nil {
		switch x := v[0].Atom.(type) {
		case int64:
			return int(x) == pos, nil
		case float64:
			return int(x) == pos && float64(int(x)) == x, nil
		}
	}
	return EffectiveBool(v)
}

// EffectiveBool computes the XPath effective boolean value of a sequence.
func EffectiveBool(v Sequence) (bool, error) {
	if len(v) == 0 {
		return false, nil
	}
	if v[0].Node != nil {
		return true, nil
	}
	if len(v) > 1 {
		return true, nil
	}
	switch x := v[0].Atom.(type) {
	case bool:
		return x, nil
	case string:
		return x != "", nil
	case int64:
		return x != 0, nil
	case float64:
		return x != 0, nil
	default:
		return false, fmt.Errorf("pathexpr: effective boolean value of %T: %w", x, ErrType)
	}
}

func evalBinary(ctx evalCtx, b *Binary) (Sequence, error) {
	switch b.Op {
	case OpOr, OpAnd:
		lv, err := evalExpr(ctx, b.L)
		if err != nil {
			return nil, err
		}
		lb, err := EffectiveBool(lv)
		if err != nil {
			return nil, err
		}
		if b.Op == OpOr && lb {
			return Sequence{AtomItem(true)}, nil
		}
		if b.Op == OpAnd && !lb {
			return Sequence{AtomItem(false)}, nil
		}
		rv, err := evalExpr(ctx, b.R)
		if err != nil {
			return nil, err
		}
		rb, err := EffectiveBool(rv)
		if err != nil {
			return nil, err
		}
		return Sequence{AtomItem(rb)}, nil
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		lv, err := evalExpr(ctx, b.L)
		if err != nil {
			return nil, err
		}
		rv, err := evalExpr(ctx, b.R)
		if err != nil {
			return nil, err
		}
		res, err := Compare(b.Op, lv, rv)
		if err != nil {
			return nil, err
		}
		return Sequence{AtomItem(res)}, nil
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		lv, err := evalExpr(ctx, b.L)
		if err != nil {
			return nil, err
		}
		rv, err := evalExpr(ctx, b.R)
		if err != nil {
			return nil, err
		}
		lf, err := toNumber(lv)
		if err != nil {
			return nil, err
		}
		rf, err := toNumber(rv)
		if err != nil {
			return nil, err
		}
		var out float64
		switch b.Op {
		case OpAdd:
			out = lf + rf
		case OpSub:
			out = lf - rf
		case OpMul:
			out = lf * rf
		case OpDiv:
			if rf == 0 {
				return nil, fmt.Errorf("pathexpr: division by zero")
			}
			out = lf / rf
		case OpMod:
			if rf == 0 {
				return nil, fmt.Errorf("pathexpr: modulo by zero")
			}
			out = float64(int64(lf) % int64(rf))
		}
		if out == float64(int64(out)) {
			return Sequence{AtomItem(int64(out))}, nil
		}
		return Sequence{AtomItem(out)}, nil
	}
	return nil, fmt.Errorf("pathexpr: unknown operator")
}

// Compare implements existential (general) comparison between sequences.
// When both operands are ELEMENT (or document) node items the comparison is
// by node identity for '=' and '!=' — the MCT idiom "[. = $m]" tests whether
// two path results reach the same node (paper Fig. 3, query Q3). Value nodes
// (attributes, text, comments) and mixed node/atomic operands atomize and
// compare by value, per XPath ("$l/@orderIdRef = $o/@id" is a value join).
func Compare(op BinaryOp, l, r Sequence) (bool, error) {
	for _, li := range l {
		for _, ri := range r {
			ok, err := compareItems(op, li, ri)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
	}
	return false, nil
}

func isStructuralNode(n *core.Node) bool {
	return n != nil && (n.Kind() == core.KindElement || n.Kind() == core.KindDocument)
}

func compareItems(op BinaryOp, l, r Item) (bool, error) {
	if isStructuralNode(l.Node) && isStructuralNode(r.Node) && (op == OpEq || op == OpNe) {
		same := l.Node.ID() == r.Node.ID()
		if op == OpEq {
			return same, nil
		}
		return !same, nil
	}
	la, err := atomizeItem(l)
	if err != nil {
		return false, err
	}
	ra, err := atomizeItem(r)
	if err != nil {
		return false, err
	}
	return compareAtoms(op, la, ra)
}

// atomizeItem converts an item to an atomic value; node items atomize to
// their typed value in the item's color.
func atomizeItem(it Item) (any, error) {
	if it.Node == nil {
		return it.Atom, nil
	}
	c := it.Color
	if c == "" {
		colors := it.Node.Colors()
		if len(colors) == 0 {
			return "", nil
		}
		c = colors[0]
	}
	v, ok := core.TypedValue(it.Node, c)
	if !ok {
		// Item color may not apply (e.g. document node); fall back.
		colors := it.Node.Colors()
		if len(colors) == 0 {
			return "", nil
		}
		v, _ = core.TypedValue(it.Node, colors[0])
	}
	return v, nil
}

func compareAtoms(op BinaryOp, l, r any) (bool, error) {
	lf, lok := asFloat(l)
	rf, rok := asFloat(r)
	if lok && rok {
		switch op {
		case OpEq:
			return lf == rf, nil
		case OpNe:
			return lf != rf, nil
		case OpLt:
			return lf < rf, nil
		case OpLe:
			return lf <= rf, nil
		case OpGt:
			return lf > rf, nil
		case OpGe:
			return lf >= rf, nil
		}
	}
	ls := asString(l)
	rs := asString(r)
	switch op {
	case OpEq:
		return ls == rs, nil
	case OpNe:
		return ls != rs, nil
	case OpLt:
		return ls < rs, nil
	case OpLe:
		return ls <= rs, nil
	case OpGt:
		return ls > rs, nil
	case OpGe:
		return ls >= rs, nil
	}
	return false, fmt.Errorf("pathexpr: bad comparison")
}

func asFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	case string:
		if a, ok := core.Atomize(x).(int64); ok {
			return float64(a), true
		}
		if a, ok := core.Atomize(x).(float64); ok {
			return a, true
		}
	}
	return 0, false
}

func asString(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case nil:
		return ""
	default:
		return fmt.Sprint(x)
	}
}

// toNumber converts a singleton sequence to a float64.
func toNumber(v Sequence) (float64, error) {
	if len(v) != 1 {
		return 0, fmt.Errorf("pathexpr: expected a single numeric value, got %d items: %w", len(v), ErrType)
	}
	a, err := atomizeItem(v[0])
	if err != nil {
		return 0, err
	}
	f, ok := asFloat(a)
	if !ok {
		return 0, fmt.Errorf("pathexpr: %v is not a number: %w", a, ErrType)
	}
	return f, nil
}

// ItemString renders an item as a string (atomizing nodes by color-aware
// string value).
func ItemString(it Item) string {
	if it.Node == nil {
		return asString(it.Atom)
	}
	c := it.Color
	if c == "" {
		colors := it.Node.Colors()
		if len(colors) > 0 {
			c = colors[0]
		}
	}
	s, _ := core.StringValue(it.Node, c)
	return s
}
