package pathexpr

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"colorfulxml/internal/core"
)

// evalCall dispatches the core function library. Functions that MCXQuery
// adds over XQuery (colors) live here too; the constructor functions
// createColor and createCopy are evaluated by the mcxquery package, which
// owns node construction.
func evalCall(ctx evalCtx, c *Call) (Sequence, error) {
	argn := func(want int) error {
		if len(c.Args) != want {
			return Errf(0, "%s() expects %d argument(s), got %d", c.Name, want, len(c.Args))
		}
		return nil
	}
	evalArgs := func() ([]Sequence, error) {
		out := make([]Sequence, len(c.Args))
		for i, a := range c.Args {
			v, err := evalExpr(ctx, a)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	switch c.Name {
	case "true":
		if err := argn(0); err != nil {
			return nil, err
		}
		return Sequence{AtomItem(true)}, nil
	case "false":
		if err := argn(0); err != nil {
			return nil, err
		}
		return Sequence{AtomItem(false)}, nil
	case "position":
		if err := argn(0); err != nil {
			return nil, err
		}
		if ctx.pos == 0 {
			return nil, fmt.Errorf("pathexpr: position() outside a predicate")
		}
		return Sequence{AtomItem(int64(ctx.pos))}, nil
	case "last":
		if err := argn(0); err != nil {
			return nil, err
		}
		if ctx.size == 0 {
			return nil, fmt.Errorf("pathexpr: last() outside a predicate")
		}
		return Sequence{AtomItem(int64(ctx.size))}, nil
	case "not":
		if err := argn(1); err != nil {
			return nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		b, err := EffectiveBool(args[0])
		if err != nil {
			return nil, err
		}
		return Sequence{AtomItem(!b)}, nil
	case "count":
		if err := argn(1); err != nil {
			return nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		return Sequence{AtomItem(int64(len(args[0])))}, nil
	case "empty":
		if err := argn(1); err != nil {
			return nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		return Sequence{AtomItem(len(args[0]) == 0)}, nil
	case "exists":
		if err := argn(1); err != nil {
			return nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		return Sequence{AtomItem(len(args[0]) > 0)}, nil
	case "contains", "starts-with", "ends-with":
		if err := argn(2); err != nil {
			return nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		hay, err := argString(args[0])
		if err != nil {
			return nil, err
		}
		needle, err := argString(args[1])
		if err != nil {
			return nil, err
		}
		var b bool
		switch c.Name {
		case "contains":
			b = strings.Contains(hay, needle)
		case "starts-with":
			b = strings.HasPrefix(hay, needle)
		case "ends-with":
			b = strings.HasSuffix(hay, needle)
		}
		return Sequence{AtomItem(b)}, nil
	case "concat":
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		for _, a := range args {
			s, err := argString(a)
			if err != nil {
				return nil, err
			}
			b.WriteString(s)
		}
		return Sequence{AtomItem(b.String())}, nil
	case "string":
		var arg Sequence
		switch len(c.Args) {
		case 0:
			arg = Sequence{ctx.item}
		case 1:
			args, err := evalArgs()
			if err != nil {
				return nil, err
			}
			arg = args[0]
		default:
			return nil, argn(1)
		}
		s, err := argString(arg)
		if err != nil {
			return nil, err
		}
		return Sequence{AtomItem(s)}, nil
	case "string-length":
		if err := argn(1); err != nil {
			return nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		s, err := argString(args[0])
		if err != nil {
			return nil, err
		}
		return Sequence{AtomItem(int64(len(s)))}, nil
	case "number":
		if err := argn(1); err != nil {
			return nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		f, err := toNumber(args[0])
		if err != nil {
			return nil, err
		}
		return Sequence{AtomItem(f)}, nil
	case "name":
		var n *core.Node
		switch len(c.Args) {
		case 0:
			n = ctx.item.Node
		case 1:
			args, err := evalArgs()
			if err != nil {
				return nil, err
			}
			if len(args[0]) == 0 {
				return Sequence{AtomItem("")}, nil
			}
			n = args[0][0].Node
		default:
			return nil, argn(1)
		}
		if n == nil {
			return Sequence{AtomItem("")}, nil
		}
		return Sequence{AtomItem(n.Name())}, nil
	case "colors":
		// MCXQuery's dm:colors accessor exposed as a function: the sorted
		// color names of a node.
		if err := argn(1); err != nil {
			return nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		var out Sequence
		for _, it := range args[0] {
			if it.Node == nil {
				return nil, fmt.Errorf("pathexpr: colors() of an atomic value: %w", ErrType)
			}
			for _, col := range it.Node.Colors() {
				out = append(out, AtomItem(string(col)))
			}
		}
		return out, nil
	case "distinct-values":
		if err := argn(1); err != nil {
			return nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		seen := map[any]bool{}
		var out Sequence
		for _, it := range args[0] {
			a, err := atomizeItem(it)
			if err != nil {
				return nil, err
			}
			if !seen[a] {
				seen[a] = true
				out = append(out, AtomItem(a))
			}
		}
		// Deterministic order helps tests; sort numerics before strings.
		sort.SliceStable(out, func(i, j int) bool { return lessAtom(out[i].Atom, out[j].Atom) })
		return out, nil
	case "sum", "min", "max", "avg":
		if err := argn(1); err != nil {
			return nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		if len(args[0]) == 0 {
			if c.Name == "sum" {
				return Sequence{AtomItem(int64(0))}, nil
			}
			return nil, nil
		}
		var acc float64
		first := true
		for _, it := range args[0] {
			a, err := atomizeItem(it)
			if err != nil {
				return nil, err
			}
			f, ok := asFloat(a)
			if !ok {
				return nil, fmt.Errorf("pathexpr: %s() over non-numeric %v: %w", c.Name, a, ErrType)
			}
			switch {
			case first:
				acc = f
				first = false
			case c.Name == "min":
				acc = math.Min(acc, f)
			case c.Name == "max":
				acc = math.Max(acc, f)
			default:
				acc += f
			}
		}
		if c.Name == "avg" {
			acc /= float64(len(args[0]))
		}
		if acc == float64(int64(acc)) {
			return Sequence{AtomItem(int64(acc))}, nil
		}
		return Sequence{AtomItem(acc)}, nil
	case "round", "floor", "ceiling":
		if err := argn(1); err != nil {
			return nil, err
		}
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		f, err := toNumber(args[0])
		if err != nil {
			return nil, err
		}
		switch c.Name {
		case "round":
			f = math.Round(f)
		case "floor":
			f = math.Floor(f)
		case "ceiling":
			f = math.Ceil(f)
		}
		return Sequence{AtomItem(int64(f))}, nil
	}
	if ctx.env.Ext != nil {
		seq, ok, err := ctx.env.Ext(ctx.env, c, ctx.item, ctx.pos, ctx.size)
		if ok || err != nil {
			return seq, err
		}
	}
	return nil, fmt.Errorf("pathexpr: %s(): %w", c.Name, ErrUnknownFunc)
}

// argString atomizes a sequence to a single string: empty sequence yields "",
// a singleton yields its string form.
func argString(s Sequence) (string, error) {
	if len(s) == 0 {
		return "", nil
	}
	return ItemString(s[0]), nil
}

func lessAtom(a, b any) bool {
	af, aok := asFloat(a)
	bf, bok := asFloat(b)
	if aok && bok {
		return af < bf
	}
	if aok != bok {
		return aok // numbers first
	}
	return asString(a) < asString(b)
}
