// Package crashtest is the fault-injection harness of the durable MCT store:
// a deterministic, seeded workload generator whose statements can be applied
// to any DB — the durable database under test (over a budgeted CrashFS) and
// in-memory shadow twins alike. After a simulated crash the recovered store
// is differentially verified against the shadows: it must be isomorphic to
// the state after some prefix of k statements with acked <= k <= attempted,
// where acked counts statements whose mutator returned success before the
// crash and attempted additionally includes the statement that was in flight.
//
// Statements reference elements by unique generated tags, never by NodeID:
// attribute and text nodes receive different identities in a reconstructed
// store, and Isomorphic compares structure and content, not identity. The
// workload deliberately avoids comments, processing instructions and
// never-attached fragments — those have no store representation and are
// documented as not durable.
package crashtest

import (
	"fmt"
	"math/rand"

	"colorfulxml/colorful"
	"colorfulxml/internal/core"
)

// Kind enumerates the statement types of a workload.
type Kind int

const (
	// OpNewChild creates an element (with a text child) under a parent.
	OpNewChild Kind = iota
	// OpSetText replaces an element's text content.
	OpSetText
	// OpSetAttr sets an attribute on an element.
	OpSetAttr
	// OpAdopt gives an element a second hierarchy: next-color constructor
	// plus an append under a parent of that color.
	OpAdopt
	// OpRename changes an element's tag (the workload keeps tags unique, so
	// the new name becomes the element's handle).
	OpRename
	// OpDeleteSubtree deletes an element's subtree in one color.
	OpDeleteSubtree
	// OpInsertBefore attaches a fresh element at a chosen position — a
	// positional change with no incremental WAL form, forcing a synchronous
	// checkpoint.
	OpInsertBefore
	// OpCheckpoint requests an explicit checkpoint (no-op on in-memory
	// shadows).
	OpCheckpoint
)

// Stmt is one workload statement. Tag names the element the statement
// targets (or creates); Ref names the parent (OpNewChild, OpAdopt) or the
// following sibling (OpInsertBefore). An empty Ref means the document node.
type Stmt struct {
	Kind  Kind
	Tag   string
	Ref   string
	Color colorful.Color
	Text  string
	Attr  string
}

// Workload is a replayable statement sequence over a fixed color set.
type Workload struct {
	Seed   int64
	Colors []colorful.Color
	Stmts  []Stmt
}

// Apply executes one statement against db, maintaining the tag -> node
// handle map (each DB instance has its own node pointers). Statements are
// designed to hold the committed-prefix property: each performs at most one
// store-visible commit, so a crash leaves the database at a statement
// boundary (or a torn tail that recovery drops back to one).
func Apply(db *colorful.DB, nodes map[string]*colorful.Node, s Stmt) error {
	resolve := func(tag string) (*colorful.Node, error) {
		if tag == "" {
			return db.Document(), nil
		}
		n := nodes[tag]
		if n == nil {
			return nil, fmt.Errorf("crashtest: statement references unknown element %q", tag)
		}
		return n, nil
	}
	switch s.Kind {
	case OpNewChild:
		parent, err := resolve(s.Ref)
		if err != nil {
			return err
		}
		n, err := db.AddElementText(parent, s.Tag, s.Color, s.Text)
		if err != nil {
			return err
		}
		nodes[s.Tag] = n
		return nil
	case OpSetText:
		n, err := resolve(s.Tag)
		if err != nil {
			return err
		}
		return db.SetText(n, s.Text)
	case OpSetAttr:
		n, err := resolve(s.Tag)
		if err != nil {
			return err
		}
		_, err = db.SetAttribute(n, s.Attr, s.Text)
		return err
	case OpAdopt:
		parent, err := resolve(s.Ref)
		if err != nil {
			return err
		}
		n, err := resolve(s.Tag)
		if err != nil {
			return err
		}
		return db.Adopt(parent, n, s.Color)
	case OpRename:
		n, err := resolve(s.Tag)
		if err != nil {
			return err
		}
		if err := db.Rename(n, s.Text); err != nil {
			return err
		}
		delete(nodes, s.Tag)
		nodes[s.Text] = n
		return nil
	case OpDeleteSubtree:
		n, err := resolve(s.Tag)
		if err != nil {
			return err
		}
		// Handles of deleted descendants go stale in the map; the generator
		// never references a deleted element again.
		return db.DeleteSubtree(n, s.Color)
	case OpInsertBefore:
		ref, err := resolve(s.Ref)
		if err != nil {
			return err
		}
		parent := core.Parent(ref, s.Color)
		if parent == nil {
			return fmt.Errorf("crashtest: %q has no parent in %q", s.Ref, s.Color)
		}
		n, err := db.NewElement(s.Tag, s.Color)
		if err != nil {
			return err
		}
		if err := db.InsertBefore(parent, n, ref, s.Color); err != nil {
			return err
		}
		nodes[s.Tag] = n
		return nil
	case OpCheckpoint:
		if !db.DurabilityStats().Durable {
			return nil // shadows are in-memory
		}
		return db.Checkpoint()
	}
	return fmt.Errorf("crashtest: unknown statement kind %d", s.Kind)
}

// Replay builds a fresh in-memory shadow holding the state after the first k
// statements of w.
func Replay(w *Workload, k int) *colorful.DB {
	db := colorful.New(w.Colors...)
	nodes := map[string]*colorful.Node{}
	for _, s := range w.Stmts[:k] {
		if err := Apply(db, nodes, s); err != nil {
			panic(fmt.Sprintf("crashtest: replaying statement %+v: %v", s, err))
		}
	}
	return db
}

var words = []string{"amber", "basalt", "cedar", "delta", "ember", "fjord", "gale", "harbor"}

// Generate builds a deterministic workload of n statements. Every statement
// is validated against a planning database as it is generated, so replaying
// any prefix on a fresh database cannot fail.
func Generate(seed int64, n int) *Workload {
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{Seed: seed, Colors: []colorful.Color{"red", "green", "blue"}}
	plan := colorful.New(w.Colors...)
	nodes := map[string]*colorful.Node{}
	var tags []string
	serial := 0
	newTag := func() string {
		serial++
		return fmt.Sprintf("n%04d", serial)
	}
	text := func() string {
		return fmt.Sprintf("%s-%d", words[rng.Intn(len(words))], rng.Intn(100))
	}
	live := func(tag string) *colorful.Node {
		n := nodes[tag]
		if n == nil || plan.NodeByID(n.ID()) != n {
			return nil
		}
		return n
	}
	// attached reports whether n is reachable from the document in color c —
	// the condition for a node to be in the durable store for that color.
	attached := func(n *colorful.Node, c colorful.Color) bool {
		cur := n
		for {
			p := core.Parent(cur, c)
			if p == nil {
				break
			}
			cur = p
		}
		return cur == plan.Document()
	}
	pickLive := func(pred func(*colorful.Node) bool) (string, bool) {
		var cands []string
		for _, t := range tags {
			if n := live(t); n != nil && pred(n) {
				cands = append(cands, t)
			}
		}
		if len(cands) == 0 {
			return "", false
		}
		return cands[rng.Intn(len(cands))], true
	}

	for len(w.Stmts) < n {
		c := w.Colors[rng.Intn(len(w.Colors))]
		inColor := func(n *colorful.Node) bool { return n.HasColor(c) && attached(n, c) }
		var s Stmt
		switch roll := rng.Intn(100); {
		case roll < 40:
			ref := "" // root under the document
			if p, ok := pickLive(inColor); ok && rng.Intn(4) > 0 {
				ref = p
			}
			s = Stmt{Kind: OpNewChild, Tag: newTag(), Ref: ref, Color: c, Text: text()}
		case roll < 52:
			t, ok := pickLive(func(*colorful.Node) bool { return true })
			if !ok {
				continue
			}
			s = Stmt{Kind: OpSetText, Tag: t, Text: text()}
		case roll < 62:
			t, ok := pickLive(func(*colorful.Node) bool { return true })
			if !ok {
				continue
			}
			s = Stmt{Kind: OpSetAttr, Tag: t, Attr: words[rng.Intn(len(words))], Text: text()}
		case roll < 72:
			// Adopt a node that does not yet have c under a parent attached
			// in c (possibly the document). Requiring !HasColor(c) rules out
			// cycles: the adoptee has no c-edges a path could close over.
			t, ok := pickLive(func(n *colorful.Node) bool { return !n.HasColor(c) })
			if !ok {
				continue
			}
			ref := ""
			if p, ok := pickLive(inColor); ok && rng.Intn(3) > 0 {
				ref = p
			}
			s = Stmt{Kind: OpAdopt, Tag: t, Ref: ref, Color: c}
		case roll < 79:
			t, ok := pickLive(func(*colorful.Node) bool { return true })
			if !ok {
				continue
			}
			s = Stmt{Kind: OpRename, Tag: t, Text: newTag()}
		case roll < 85:
			t, ok := pickLive(inColor)
			if !ok {
				continue
			}
			s = Stmt{Kind: OpDeleteSubtree, Tag: t, Color: c}
		case roll < 93:
			t, ok := pickLive(inColor)
			if !ok {
				continue
			}
			s = Stmt{Kind: OpInsertBefore, Tag: newTag(), Ref: t, Color: c}
		default:
			s = Stmt{Kind: OpCheckpoint}
		}
		if err := Apply(plan, nodes, s); err != nil {
			panic(fmt.Sprintf("crashtest: generated invalid statement %+v: %v", s, err))
		}
		switch s.Kind {
		case OpNewChild, OpInsertBefore:
			tags = append(tags, s.Tag)
		case OpRename:
			for i, t := range tags {
				if t == s.Tag {
					tags[i] = s.Text
					break
				}
			}
		}
		w.Stmts = append(w.Stmts, s)
	}
	return w
}
