package crashtest

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"colorfulxml/colorful"
	"colorfulxml/internal/vfs"
)

// The harness: run the workload against a durable database whose filesystem
// loses power after a randomly chosen number of written bytes, reopen, and
// differentially verify the recovered state against in-memory shadows. A
// crash may land anywhere — mid WAL record, between a checkpoint's page
// image and its manifest rename, during garbage collection — and recovery
// must always land on a committed statement boundary.

// points returns how many random crash points to test: CRASHTEST_POINTS
// overrides, -short trims.
func points(t *testing.T) int {
	if s := os.Getenv("CRASHTEST_POINTS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad CRASHTEST_POINTS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 25
	}
	return 200
}

// nosyncFS neutralizes fsync: in the CrashFS model every byte written before
// the crash is durable and everything after is refused, so real fsyncs add
// nothing to the model — only minutes to the harness.
type nosyncFS struct{ vfs.FS }

func (n nosyncFS) Create(name string) (vfs.File, error) {
	f, err := n.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return nosyncFile{f}, nil
}

func (n nosyncFS) SyncDir(string) error { return nil }

type nosyncFile struct{ vfs.File }

func (f nosyncFile) Sync() error { return nil }

// harnessOpts uses a small pool and a tiny auto-checkpoint threshold so a
// short workload still crosses every durability code path many times, and
// turns on the invariant sweep: every open validates the recovered state and
// every incremental snapshot apply re-audits the core database.
func harnessOpts(fs vfs.FS) colorful.Options {
	return colorful.Options{FS: fs, PoolPages: 32, CheckpointBytes: 4096, ValidateInvariants: true}
}

// runWorkload feeds w to a durable database over fs until a statement fails
// (or the workload ends), then closes the database. acked counts statements
// whose mutator acknowledged success; attempted additionally counts a
// statement that was in flight when the failure hit.
func runWorkload(dir string, fs vfs.FS, w *Workload) (acked, attempted int, err error) {
	db, err := colorful.OpenOptions(dir, harnessOpts(fs), w.Colors...)
	if err != nil {
		return 0, 0, err
	}
	nodes := map[string]*colorful.Node{}
	for _, s := range w.Stmts {
		if aerr := Apply(db, nodes, s); aerr != nil {
			db.Close() //nolint:errcheck // the crash supersedes
			return acked, acked + 1, aerr
		}
		acked++
	}
	return acked, acked, db.Close()
}

// verifyRecovered opens dir with a healthy filesystem and checks the
// committed-prefix property: the recovered state must be isomorphic to the
// shadow after k statements for some k in [acked, attempted] — and a second
// recovery must land on the same k (idempotence).
func verifyRecovered(t *testing.T, dir string, w *Workload, acked, attempted int) {
	t.Helper()
	rec, err := colorful.OpenOptions(dir, colorful.Options{ValidateInvariants: true}, w.Colors...)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if verr := rec.Validate(); verr != nil {
		rec.Close()
		t.Fatalf("recovered state violates core invariants: %v", verr)
	}
	match, firstWhy := -1, ""
	for k := acked; k <= attempted; k++ {
		ok, why := colorful.Isomorphic(Replay(w, k), rec)
		if ok {
			match = k
			break
		}
		if k == acked {
			firstWhy = why
		}
	}
	if match < 0 {
		rec.Close()
		t.Fatalf("recovered state matches no committed prefix in [%d, %d]: %s\nrecovery: %+v",
			acked, attempted, firstWhy, rec.Recovery())
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("closing recovered database: %v", err)
	}
	again, err := colorful.OpenOptions(dir, colorful.Options{ValidateInvariants: true}, w.Colors...)
	if err != nil {
		t.Fatalf("second recovery failed: %v", err)
	}
	defer again.Close()
	if verr := again.Validate(); verr != nil {
		t.Fatalf("second recovery violates core invariants: %v", verr)
	}
	if ok, why := colorful.Isomorphic(Replay(w, match), again); !ok {
		t.Fatalf("recovery is not idempotent (first landed on prefix %d): %s", match, why)
	}
}

func TestCrashPoints(t *testing.T) {
	w := Generate(0xC010F, 140)
	base := t.TempDir()

	// Dry run on an unlimited (counting) filesystem: proves the workload is
	// valid, measures the total write cost, and pins the oracle — a clean
	// run must recover to exactly the full shadow.
	dry := vfs.NewCrashFS(nosyncFS{vfs.OS}, -1)
	dryDir := filepath.Join(base, "dry")
	acked, attempted, err := runWorkload(dryDir, dry, w)
	if err != nil {
		t.Fatalf("crash-free run failed: %v", err)
	}
	if acked != len(w.Stmts) {
		t.Fatalf("crash-free run acked %d of %d statements", acked, len(w.Stmts))
	}
	verifyRecovered(t, dryDir, w, acked, attempted)
	total := dry.BytesWritten()
	if total == 0 {
		t.Fatal("workload wrote no bytes")
	}

	n := points(t)
	t.Logf("testing %d crash points over %d written bytes", n, total)
	rng := rand.New(rand.NewSource(0xDECAF))
	for i := 0; i < n; i++ {
		budget := 1 + rng.Int63n(total)
		dir := filepath.Join(base, fmt.Sprintf("crash-%03d", i))
		cfs := vfs.NewCrashFS(nosyncFS{vfs.OS}, budget)
		acked, attempted, err := runWorkload(dir, cfs, w)
		if err != nil && !cfs.Crashed() {
			t.Fatalf("point %d (budget %d): failure without a crash after %d acks: %v",
				i, budget, acked, err)
		}
		verifyRecovered(t, dir, w, acked, attempted)
	}
}

// TestCrashDuringRecovery crashes the recovery itself: every write budget
// small enough to interrupt the reopen of a populated directory must leave
// it recoverable by the next (healthy) open, with nothing lost.
func TestCrashDuringRecovery(t *testing.T) {
	w := Generate(0xBEEF, 80)
	base := t.TempDir()
	master := filepath.Join(base, "master")
	if acked, _, err := runWorkload(master, vfs.NewCrashFS(nosyncFS{vfs.OS}, -1), w); err != nil || acked != len(w.Stmts) {
		t.Fatalf("building master directory: acked %d, %v", acked, err)
	}
	full := Replay(w, len(w.Stmts))
	for budget := int64(1); budget <= 32; budget++ {
		dir := filepath.Join(base, fmt.Sprintf("rec-%02d", budget))
		copyDir(t, master, dir)
		cfs := vfs.NewCrashFS(nosyncFS{vfs.OS}, budget)
		db, err := colorful.OpenOptions(dir, harnessOpts(cfs), w.Colors...)
		if err == nil {
			db.Close() //nolint:errcheck // may report a post-open crash
		} else if !cfs.Crashed() {
			t.Fatalf("budget %d: reopen failed without a crash: %v", budget, err)
		}
		rec, err := colorful.OpenOptions(dir, colorful.Options{ValidateInvariants: true}, w.Colors...)
		if err != nil {
			t.Fatalf("budget %d: recovery after crashed recovery failed: %v", budget, err)
		}
		if verr := rec.Validate(); verr != nil {
			t.Fatalf("budget %d: recovered state violates core invariants: %v", budget, verr)
		}
		if ok, why := colorful.Isomorphic(full, rec); !ok {
			t.Fatalf("budget %d: crashed recovery lost data: %s", budget, why)
		}
		rec.Close()
	}
}

// TestWorkloadDeterminism pins the property the whole harness rests on: the
// same seed yields the same statements, and replaying them twice yields
// isomorphic databases.
func TestWorkloadDeterminism(t *testing.T) {
	a, b := Generate(7, 60), Generate(7, 60)
	if len(a.Stmts) != len(b.Stmts) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Stmts), len(b.Stmts))
	}
	for i := range a.Stmts {
		if a.Stmts[i] != b.Stmts[i] {
			t.Fatalf("statement %d differs: %+v vs %+v", i, a.Stmts[i], b.Stmts[i])
		}
	}
	if ok, why := colorful.Isomorphic(Replay(a, 60), Replay(b, 60)); !ok {
		t.Fatalf("replays diverge: %s", why)
	}
}

func copyDir(t *testing.T, from, to string) {
	t.Helper()
	if err := os.MkdirAll(to, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(from, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
