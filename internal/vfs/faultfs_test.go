package vfs

import (
	"errors"
	"path/filepath"
	"testing"
	"time"
)

func TestFaultFSScheduledFault(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultFS(OS, 1)
	// Op 0 is the Create; op 1 the first Write.
	f.Schedule(1, Fault{Err: ErrDiskFull})
	file, err := f.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write([]byte("hello")); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("want ErrDiskFull, got %v", err)
	}
	// One-shot: the next write succeeds.
	if _, err := file.Write([]byte("hello")); err != nil {
		t.Fatalf("fault was not one-shot: %v", err)
	}
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}
	if f.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", f.Injected())
	}
}

func TestFaultFSPartialWrite(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultFS(OS, 1)
	f.Schedule(1, Fault{Err: ErrIO, PartialFrac: 0.5})
	file, err := f.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := file.Write([]byte("0123456789"))
	if !errors.Is(err, ErrIO) {
		t.Fatalf("want ErrIO, got %v", err)
	}
	if n != 5 {
		t.Fatalf("partial write delivered %d bytes, want 5", n)
	}
	file.Close()
	data, err := OS.ReadFile(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "01234" {
		t.Fatalf("file holds %q, want the 5-byte prefix", data)
	}
}

func TestFaultFSStandingAndClear(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultFS(OS, 1)
	f.SetStanding(ErrIO)
	if _, err := f.Create(filepath.Join(dir, "a")); !errors.Is(err, ErrIO) {
		t.Fatalf("standing fault not applied: %v", err)
	}
	if err := f.Rename(filepath.Join(dir, "x"), filepath.Join(dir, "y")); !errors.Is(err, ErrIO) {
		t.Fatalf("standing fault skipped rename: %v", err)
	}
	f.Clear()
	file, err := f.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("cleared FS still failing: %v", err)
	}
	file.Close()
	if f.Injected() != 2 {
		t.Fatalf("Injected = %d, want 2", f.Injected())
	}
}

func TestFaultFSRateSeededDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		dir := t.TempDir()
		f := NewFaultFS(OS, 77)
		f.SetRate(0.3, ErrIO)
		var fails int64
		for i := 0; i < 100; i++ {
			file, err := f.Create(filepath.Join(dir, "f"))
			if err != nil {
				fails++
				continue
			}
			if _, err := file.Write([]byte("x")); err != nil {
				fails++
			}
			file.Close()
		}
		return fails, f.Injected()
	}
	f1, i1 := run()
	f2, i2 := run()
	if f1 != f2 || i1 != i2 {
		t.Fatalf("seeded rate mode not deterministic: (%d,%d) vs (%d,%d)", f1, i1, f2, i2)
	}
	if i1 == 0 {
		t.Fatal("rate mode injected nothing")
	}
}

func TestFaultFSSyncDelay(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultFS(OS, 1)
	var slept time.Duration
	f.SetSleep(func(d time.Duration) { slept += d })
	f.SetSyncDelay(50 * time.Millisecond)
	file, err := f.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := file.Sync(); err != nil {
		t.Fatal(err)
	}
	file.Close()
	if slept != 50*time.Millisecond {
		t.Fatalf("sync slept %v, want 50ms", slept)
	}
	if f.Injected() != 1 {
		t.Fatalf("latency event not counted: Injected = %d", f.Injected())
	}
}
