package vfs

import (
	"errors"
	"syscall"
)

// This file is the error taxonomy of the durability stack: every I/O failure
// is either transient (momentary resource exhaustion the operation may retry
// — a full disk being cleaned up, an EIO from a wobbly device, an
// interrupted syscall) or permanent (corruption, programming errors,
// simulated power loss). The retry machinery (see retry.go) consults
// IsTransient; everything it does not recognize is treated as permanent, so
// an unknown failure is surfaced immediately rather than retried blindly.

// ErrDiskFull is the typed sentinel for out-of-space failures. FaultFS
// injects it, and IsTransient classifies it (like the underlying ENOSPC) as
// transient: space is the canonical resource that comes back.
var ErrDiskFull = errors.New("vfs: disk full")

// ErrIO is the typed sentinel for generic device I/O failures. FaultFS
// injects it for its transient fault episodes; IsTransient classifies it
// (like EIO) as transient.
var ErrIO = errors.New("vfs: i/o error")

// errPermanent is wrapped by FaultFS's standing (permanent) faults so the
// retry machinery gives up on them immediately even though they carry the
// same surface sentinels.
var errPermanent = errors.New("vfs: permanent fault")

// IsTransient reports whether err is a momentary durability failure worth
// retrying: the typed sentinels ErrDiskFull and ErrIO, and the ENOSPC, EIO,
// EAGAIN, EINTR and EDQUOT errnos. A simulated crash (ErrCrashed) is never
// transient — the crash-recovery harness models power loss, and retrying
// through a power loss would be nonsense. Unknown errors are permanent by
// default.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrCrashed) || errors.Is(err, errPermanent) {
		return false
	}
	if errors.Is(err, ErrDiskFull) || errors.Is(err, ErrIO) {
		return true
	}
	for _, errno := range []syscall.Errno{syscall.ENOSPC, syscall.EIO, syscall.EAGAIN, syscall.EINTR, syscall.EDQUOT} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}
