package vfs

import (
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"
)

func TestIsTransientTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrDiskFull, true},
		{ErrIO, true},
		{fmt.Errorf("wal: segment x: %w", ErrDiskFull), true},
		{fmt.Errorf("storage: checkpoint: %w", ErrIO), true},
		{syscall.ENOSPC, true},
		{syscall.EIO, true},
		{syscall.EINTR, true},
		{fmt.Errorf("open: %w", syscall.ENOSPC), true},
		{ErrCrashed, false},
		{fmt.Errorf("wal: %w", ErrCrashed), false},
		{Permanent(ErrIO), false},
		{fmt.Errorf("op: %w", Permanent(ErrDiskFull)), false},
		{errors.New("something else"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	// The surface sentinel stays visible through Permanent.
	if !errors.Is(Permanent(ErrDiskFull), ErrDiskFull) {
		t.Error("Permanent hides the wrapped sentinel")
	}
}

func TestBackoffSchedule(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   8 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Budget:      time.Second,
		Seed:        42,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	b := NewBackoff(p)
	for i := 0; i < 3; i++ {
		d, ok := b.Next(ErrIO)
		if !ok {
			t.Fatalf("retry %d refused", i)
		}
		if d <= 0 {
			t.Fatalf("retry %d: non-positive delay %v", i, d)
		}
	}
	if _, ok := b.Next(ErrIO); ok {
		t.Fatal("4th retry allowed past MaxAttempts")
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(slept))
	}
	// Exponential envelope with jitter in [d/2, d], capped at MaxDelay.
	for i, want := range []time.Duration{8 * time.Millisecond, 16 * time.Millisecond, 20 * time.Millisecond} {
		if slept[i] < want/2 || slept[i] > want {
			t.Errorf("delay %d = %v outside [%v, %v]", i, slept[i], want/2, want)
		}
	}
}

func TestBackoffRefusesPermanent(t *testing.T) {
	b := NewBackoff(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Sleep: func(time.Duration) {}})
	if _, ok := b.Next(ErrCrashed); ok {
		t.Fatal("retried through a simulated crash")
	}
	b2 := NewBackoff(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Sleep: func(time.Duration) {}})
	if _, ok := b2.Next(errors.New("bug")); ok {
		t.Fatal("retried an unclassified error")
	}
}

func TestBackoffBudget(t *testing.T) {
	p := RetryPolicy{
		MaxAttempts: 100,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		Budget:      25 * time.Millisecond,
		Sleep:       func(time.Duration) {},
	}
	b := NewBackoff(p)
	n := 0
	for {
		if _, ok := b.Next(ErrDiskFull); !ok {
			break
		}
		n++
		if n > 10 {
			t.Fatal("budget never exhausted")
		}
	}
	// 10ms delays jittered to [5ms, 10ms]: the 25ms budget admits 2-5.
	if n < 2 || n > 5 {
		t.Fatalf("budget admitted %d retries, want 2..5", n)
	}
}

func TestBackoffZeroPolicyNoRetry(t *testing.T) {
	b := NewBackoff(RetryPolicy{})
	if _, ok := b.Next(ErrIO); ok {
		t.Fatal("zero policy retried")
	}
	if (RetryPolicy{}).Enabled() {
		t.Fatal("zero policy reports Enabled")
	}
	if !DefaultRetryPolicy.Enabled() {
		t.Fatal("default policy reports disabled")
	}
}
