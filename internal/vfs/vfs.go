// Package vfs is the small filesystem abstraction beneath the durable MCT
// store. The write-ahead log and the checkpoint writer perform all file
// operations through an FS, so tests can substitute fault-injecting
// implementations (see CrashFS) that tear writes at arbitrary byte offsets —
// the crash model of the recovery test harness — without touching the
// production code paths.
package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is a writable file handle. Writes are durable only after Sync.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the set of filesystem operations the durability layer needs.
// Paths are plain slash-joined strings; implementations may interpret them
// relative to a root.
type FS interface {
	// Create creates (or truncates) a file for writing.
	Create(name string) (File, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists the file names (not full paths) in a directory, sorted.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates a directory and its parents.
	MkdirAll(dir string) error
	// SyncDir fsyncs a directory, making renames and creates durable.
	SyncDir(dir string) error
	// Stat reports whether a file exists and its size.
	Stat(name string) (size int64, err error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (osFS) Stat(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// IsNotExist reports whether an FS error means the file is absent.
func IsNotExist(err error) bool { return errors.Is(err, os.ErrNotExist) }

// Join joins path elements (filepath.Join; exported so callers need not
// import both packages).
func Join(elem ...string) string { return filepath.Join(elem...) }
