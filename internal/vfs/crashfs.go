package vfs

import (
	"errors"
	"sync"
)

// ErrCrashed is returned by every CrashFS operation after the write budget is
// exhausted: the simulated machine has lost power.
var ErrCrashed = errors.New("vfs: simulated crash")

// CrashFS wraps an FS with a byte-budget failpoint: once the cumulative cost
// of write operations reaches the budget, the filesystem "crashes" — the
// in-flight write is torn (only the bytes that fit within the budget reach
// the underlying file) and every subsequent operation fails with ErrCrashed.
//
// Costs: each written byte costs 1; Create, Rename and Remove cost 1 each
// (so crash points land between metadata operations too); Sync and reads are
// free but fail once crashed. A budget that lands exactly at the end of a
// write lets the write complete and crashes immediately after — modeling the
// classic "data written, fsync never issued" window.
//
// A negative budget never crashes; the wrapper then only counts bytes, which
// the test harness uses to measure a run before choosing crash points.
type CrashFS struct {
	base FS

	mu        sync.Mutex
	remaining int64
	unlimited bool
	crashed   bool
	written   int64
}

// NewCrashFS wraps base with a write budget. budget < 0 disables crashing
// (counting mode).
func NewCrashFS(base FS, budget int64) *CrashFS {
	return &CrashFS{base: base, remaining: budget, unlimited: budget < 0}
}

// Crashed reports whether the budget has been exhausted.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// BytesWritten returns the cumulative cost consumed so far.
func (c *CrashFS) BytesWritten() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.written
}

// consume charges n cost units and returns how many are allowed through.
// ok is false when the FS has already crashed.
func (c *CrashFS) consume(n int64) (allowed int64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, false
	}
	c.written += n
	if c.unlimited {
		return n, true
	}
	allowed = n
	if allowed > c.remaining {
		allowed = c.remaining
	}
	c.remaining -= allowed
	if c.remaining == 0 {
		c.crashed = true
		c.remaining = -1 // consumed; future ops fail via crashed
	}
	if allowed < n {
		return allowed, true // torn: caller writes the prefix then fails
	}
	return allowed, true
}

// alive reports whether the FS has not crashed (for zero-cost operations).
func (c *CrashFS) alive() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.crashed
}

func (c *CrashFS) Create(name string) (File, error) {
	if allowed, ok := c.consume(1); !ok || allowed < 1 {
		return nil, ErrCrashed
	}
	f, err := c.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, f: f}, nil
}

func (c *CrashFS) ReadFile(name string) ([]byte, error) {
	if !c.alive() {
		return nil, ErrCrashed
	}
	return c.base.ReadFile(name)
}

func (c *CrashFS) Rename(oldname, newname string) error {
	if allowed, ok := c.consume(1); !ok || allowed < 1 {
		return ErrCrashed
	}
	return c.base.Rename(oldname, newname)
}

func (c *CrashFS) Remove(name string) error {
	if allowed, ok := c.consume(1); !ok || allowed < 1 {
		return ErrCrashed
	}
	return c.base.Remove(name)
}

func (c *CrashFS) ReadDir(dir string) ([]string, error) {
	if !c.alive() {
		return nil, ErrCrashed
	}
	return c.base.ReadDir(dir)
}

func (c *CrashFS) MkdirAll(dir string) error {
	if !c.alive() {
		return ErrCrashed
	}
	return c.base.MkdirAll(dir)
}

func (c *CrashFS) SyncDir(dir string) error {
	if !c.alive() {
		return ErrCrashed
	}
	return c.base.SyncDir(dir)
}

func (c *CrashFS) Stat(name string) (int64, error) {
	if !c.alive() {
		return 0, ErrCrashed
	}
	return c.base.Stat(name)
}

type crashFile struct {
	fs *CrashFS
	f  File
}

func (cf *crashFile) Write(p []byte) (int, error) {
	allowed, ok := cf.fs.consume(int64(len(p)))
	if !ok {
		return 0, ErrCrashed
	}
	if allowed < int64(len(p)) {
		// Torn write: the prefix reaches the file, then the power goes out.
		if allowed > 0 {
			cf.f.Write(p[:allowed]) //nolint:errcheck // the crash supersedes
		}
		return int(allowed), ErrCrashed
	}
	return cf.f.Write(p)
}

func (cf *crashFile) Sync() error {
	if !cf.fs.alive() {
		return ErrCrashed
	}
	return cf.f.Sync()
}

func (cf *crashFile) Close() error {
	// Closing is always allowed so tests do not leak descriptors, but a
	// crashed FS still reports the crash.
	err := cf.f.Close()
	if !cf.fs.alive() {
		return ErrCrashed
	}
	return err
}
