package vfs

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultFS wraps an FS with deterministic, seeded fault injection for the
// chaos harness: unlike CrashFS — which models a single unrecoverable power
// loss — FaultFS models a disk that misbehaves while the process keeps
// running. Faults are injected into durability operations (Create, Rename,
// Remove, SyncDir, file Write and Sync), each of which consumes one index in
// a global operation sequence:
//
//   - one-shot faults scheduled at explicit operation indices (Schedule) —
//     exactly reproducible, for single-writer tests;
//   - a seeded failure rate (SetRate) — statistically reproducible, for
//     concurrent workloads where operation interleaving varies;
//   - a standing fault (SetStanding) failing every operation until Clear —
//     an outage window, transient or permanent per the error's taxonomy;
//   - injected fsync latency (SetSyncDelay) — a slow disk, not a broken one.
//
// A faulted Write may deliver a prefix of its bytes before failing (a torn
// in-flight write), driving the WAL's partial-write continuation. Reads are
// never faulted: read-side damage is modeled by corrupting bytes on the base
// filesystem directly (see the scrubber tests).
type FaultFS struct {
	base FS

	mu       sync.Mutex
	rng      *rand.Rand
	rate     float64
	rateErr  error
	sched    map[int64]Fault
	standing error
	delay    time.Duration
	ops      int64
	injected int64
	sleep    func(time.Duration)
}

// Fault is one scheduled fault. Err fails the operation (wrapped with the
// operation's name); PartialFrac in (0, 1) additionally delivers that
// fraction of a Write's bytes before the failure. A zero Err with a positive
// Delay injects latency only (meaningful for Sync operations).
type Fault struct {
	Err         error
	PartialFrac float64
	Delay       time.Duration
}

// NewFaultFS wraps base with a seeded fault injector. With no schedule, rate
// or standing fault configured it is transparent.
func NewFaultFS(base FS, seed int64) *FaultFS {
	return &FaultFS{
		base:  base,
		rng:   rand.New(rand.NewSource(seed)),
		sched: map[int64]Fault{},
		sleep: time.Sleep,
	}
}

// Permanent wraps err so IsTransient reports false: a standing fault built
// from a transient sentinel becomes a hard outage the retry layer gives up
// on immediately.
func Permanent(err error) error {
	return fmt.Errorf("%w: %w", errPermanent, err)
}

// SetRate makes each durability operation fail with probability rate,
// reporting err (ErrIO when nil). The seeded stream makes a single-threaded
// run exactly reproducible and a concurrent one statistically so.
func (f *FaultFS) SetRate(rate float64, err error) {
	if err == nil {
		err = ErrIO
	}
	f.mu.Lock()
	f.rate, f.rateErr = rate, err
	f.mu.Unlock()
}

// Schedule arms a one-shot fault at the given durability-operation index
// (the current index is Ops; operations are numbered from 0).
func (f *FaultFS) Schedule(opIndex int64, fault Fault) {
	f.mu.Lock()
	f.sched[opIndex] = fault
	f.mu.Unlock()
}

// SetStanding makes every durability operation fail with err until Clear;
// use Permanent(err) for an outage retries should not ride out.
func (f *FaultFS) SetStanding(err error) {
	f.mu.Lock()
	f.standing = err
	f.mu.Unlock()
}

// Clear removes the standing fault: the disk works again.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	f.standing = nil
	f.mu.Unlock()
}

// SetSyncDelay injects latency into every file Sync — a slow disk.
func (f *FaultFS) SetSyncDelay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

// SetSleep replaces the latency injector's sleep (tests inject a no-op).
func (f *FaultFS) SetSleep(fn func(time.Duration)) {
	f.mu.Lock()
	f.sleep = fn
	f.mu.Unlock()
}

// Ops returns how many durability operations have been issued.
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Injected returns how many faults (errors and latency events) have been
// injected so far — the chaos harness's event count.
func (f *FaultFS) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// next consumes one durability-operation index and decides its fate.
func (f *FaultFS) next(op string) (fault Fault, inject bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	idx := f.ops
	f.ops++
	if fl, ok := f.sched[idx]; ok {
		delete(f.sched, idx)
		f.injected++
		return fl, true
	}
	if f.standing != nil {
		f.injected++
		return Fault{Err: f.standing}, true
	}
	if f.rate > 0 && f.rng.Float64() < f.rate {
		f.injected++
		return Fault{Err: f.rateErr}, true
	}
	if op == "sync" && f.delay > 0 {
		f.injected++
		return Fault{Delay: f.delay}, true
	}
	return Fault{}, false
}

func (f *FaultFS) opErr(op string) error {
	fault, inject := f.next(op)
	if !inject {
		return nil
	}
	if fault.Delay > 0 {
		f.mu.Lock()
		sleep := f.sleep
		f.mu.Unlock()
		sleep(fault.Delay)
	}
	if fault.Err == nil {
		return nil
	}
	return fmt.Errorf("vfs: fault injected in %s: %w", op, fault.Err)
}

func (f *FaultFS) Create(name string) (File, error) {
	if err := f.opErr("create"); err != nil {
		return nil, err
	}
	file, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.base.ReadFile(name) }

func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.opErr("rename"); err != nil {
		return err
	}
	return f.base.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.opErr("remove"); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.base.ReadDir(dir) }

func (f *FaultFS) MkdirAll(dir string) error { return f.base.MkdirAll(dir) }

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.opErr("syncdir"); err != nil {
		return err
	}
	return f.base.SyncDir(dir)
}

func (f *FaultFS) Stat(name string) (int64, error) { return f.base.Stat(name) }

type faultFile struct {
	fs *FaultFS
	f  File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	fault, inject := ff.fs.next("write")
	if !inject {
		return ff.f.Write(p)
	}
	if fault.Err == nil {
		return ff.f.Write(p)
	}
	err := fmt.Errorf("vfs: fault injected in write: %w", fault.Err)
	if fault.PartialFrac > 0 && fault.PartialFrac < 1 {
		n := int(float64(len(p)) * fault.PartialFrac)
		if n > 0 {
			wrote, werr := ff.f.Write(p[:n])
			if werr != nil {
				return wrote, werr
			}
			return wrote, err
		}
	}
	return 0, err
}

func (ff *faultFile) Sync() error {
	fault, inject := ff.fs.next("sync")
	if !inject {
		return ff.f.Sync()
	}
	if fault.Delay > 0 {
		ff.fs.mu.Lock()
		sleep := ff.fs.sleep
		ff.fs.mu.Unlock()
		sleep(fault.Delay)
	}
	if fault.Err != nil {
		return fmt.Errorf("vfs: fault injected in sync: %w", fault.Err)
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
