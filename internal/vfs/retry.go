package vfs

import (
	"math/rand"
	"sync/atomic"
	"time"
)

// Retry machinery for transient durability failures: capped exponential
// backoff with seeded jitter under a per-operation budget. The WAL writer and
// the checkpoint installer drive a Backoff per operation; the policy lives
// here — not in the determinism-scoped wal/storage packages — so the only
// clock and randomness those packages touch is encapsulated behind an
// injectable, seeded object. The budget is accounted as the sum of backoff
// delays handed out, not against a wall clock, so a schedule is exactly
// reproducible under an injected Sleep.

// RetryPolicy configures transient-failure retries for one durability layer.
// The zero value means "no retries" (a single attempt); DefaultRetryPolicy
// is the production default.
type RetryPolicy struct {
	// MaxAttempts caps total attempts, including the first (<= 1: no
	// retries).
	MaxAttempts int
	// BaseDelay is the first backoff delay; each retry doubles it up to
	// MaxDelay. The actual delay is jittered uniformly in [delay/2, delay].
	BaseDelay time.Duration
	// MaxDelay caps the per-retry backoff delay.
	MaxDelay time.Duration
	// Budget caps the total backoff slept per operation — the per-commit
	// retry deadline. Accounted as the sum of delays handed out.
	Budget time.Duration
	// Seed seeds the jitter stream (decorrelated per Backoff). Zero uses a
	// process-wide sequence; fixed seeds give reproducible schedules.
	Seed int64
	// Sleep, when non-nil, replaces time.Sleep — tests inject a no-op to
	// run retry schedules instantly.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is the production retry schedule: five attempts,
// 1 ms -> 100 ms exponential backoff, at most two seconds of total backoff
// per operation.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 5,
	BaseDelay:   time.Millisecond,
	MaxDelay:    100 * time.Millisecond,
	Budget:      2 * time.Second,
}

// Enabled reports whether the policy allows any retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// backoffSeq decorrelates the jitter of concurrent Backoff instances sharing
// one policy seed.
var backoffSeq atomic.Int64

// Backoff is the retry iterator for one operation. Not safe for concurrent
// use; create one per operation (NewBackoff is cheap for the common
// no-retry-needed case — the jitter source is built lazily).
type Backoff struct {
	p        RetryPolicy
	attempts int           // attempts made so far
	delay    time.Duration // next base delay
	slept    time.Duration // total backoff handed out
	rng      *rand.Rand
}

// NewBackoff starts a retry schedule under p.
func NewBackoff(p RetryPolicy) *Backoff {
	return &Backoff{p: p, delay: p.BaseDelay}
}

// Next decides whether the failed attempt should be retried: if err is
// transient and attempts and budget remain, it sleeps the next backoff delay
// and returns (delay, true); otherwise (nil error, permanent error,
// exhausted schedule) it returns (0, false) without sleeping. The first call
// accounts for the operation's initial attempt.
func (b *Backoff) Next(err error) (time.Duration, bool) {
	b.attempts++
	if err == nil || !IsTransient(err) {
		return 0, false
	}
	if b.attempts >= b.p.MaxAttempts {
		return 0, false
	}
	d := b.delay
	if d <= 0 {
		d = time.Millisecond
	}
	if b.p.MaxDelay > 0 && d > b.p.MaxDelay {
		d = b.p.MaxDelay
	}
	// Jitter uniformly in [d/2, d] so concurrent retriers decorrelate.
	if b.rng == nil {
		b.rng = rand.New(rand.NewSource(b.p.Seed ^ (backoffSeq.Add(1) * 0x5851F42D4C957F2D)))
	}
	d = d/2 + time.Duration(b.rng.Int63n(int64(d/2)+1))
	if b.p.Budget > 0 && b.slept+d > b.p.Budget {
		return 0, false
	}
	b.slept += d
	b.delay *= 2
	if b.p.Sleep != nil {
		b.p.Sleep(d)
	} else {
		time.Sleep(d)
	}
	return d, true
}

// Attempts returns how many attempts the schedule has accounted for.
func (b *Backoff) Attempts() int { return b.attempts }
