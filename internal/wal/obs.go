package wal

import "colorfulxml/internal/obs"

// WAL instruments: append/byte volume, fsync count and latency, and the
// group-commit batch size (records made durable per flush — the amortization
// factor of group commit). Timing goes through obs, the sanctioned clock for
// determinism-scoped packages; readings feed metrics only, never encoded
// bytes.
var (
	obsAppends = obs.NewCounter("wal_appends_total")
	obsBytes   = obs.NewCounter("wal_bytes_total")
	obsFsyncs  = obs.NewCounter("wal_fsyncs_total")
	obsRetries = obs.NewCounter("wal_retries_total")

	obsBatchRecords      = obs.NewHistogram("wal_batch_records")
	obsSyncNanos         = obs.NewHistogram("wal_sync_nanos")
	obsRetryBackoffNanos = obs.NewHistogram("wal_retry_backoff_nanos")
)
