package wal

import (
	"bytes"
	"reflect"
	"testing"

	"colorfulxml/internal/core"
)

// FuzzWALDecode throws arbitrary bytes at both decoding layers of the log —
// the record framing (ReadSegment) and the change-batch payload format
// (DecodeChanges). Neither may panic or over-allocate; whatever decodes
// successfully must survive an encode/decode round trip unchanged.
func FuzzWALDecode(f *testing.F) {
	// A healthy two-record segment.
	batch := EncodeChanges([]core.Change{
		{Kind: core.ChangeInsertLeaf, Elem: 2, Parent: 1, Color: "red", Tag: "movie"},
		{Kind: core.ChangeAttrs, Elem: 2, Attrs: [][2]string{{"year", "1950"}}},
	})
	seg := AppendRecord(nil, 1, batch)
	seg = AppendRecord(seg, 2, EncodeChanges([]core.Change{
		{Kind: core.ChangeContent, Elem: 2, Content: "All About Eve"},
	}))
	f.Add(seg)
	// The same segment with a torn tail and with a flipped body byte.
	f.Add(seg[:len(seg)-3])
	flipped := bytes.Clone(seg)
	flipped[len(flipped)-1] ^= 0x40
	f.Add(flipped)
	// A bare payload (not record-framed) and adversarial length prefixes.
	f.Add(batch)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, final := range []bool{true, false} {
			res, err := ReadSegment(data, "fuzz", final)
			if err != nil {
				continue
			}
			for _, rec := range res.Records {
				changes, err := DecodeChanges(rec.Payload)
				if err != nil {
					continue
				}
				roundTrip(t, changes)
			}
		}
		if changes, err := DecodeChanges(data); err == nil {
			roundTrip(t, changes)
		}
	})
}

func roundTrip(t *testing.T, changes []core.Change) {
	t.Helper()
	enc := EncodeChanges(changes)
	back, err := DecodeChanges(enc)
	if err != nil {
		t.Fatalf("re-encoded batch does not decode: %v", err)
	}
	if len(back) != len(changes) {
		t.Fatalf("round trip changed batch size: %d -> %d", len(changes), len(back))
	}
	for i := range changes {
		if changes[i].Kind != back[i].Kind || changes[i].Elem != back[i].Elem ||
			changes[i].Parent != back[i].Parent || changes[i].Color != back[i].Color ||
			changes[i].Tag != back[i].Tag || changes[i].Content != back[i].Content ||
			!reflect.DeepEqual(changes[i].Attrs, back[i].Attrs) {
			t.Fatalf("round trip changed change %d: %+v -> %+v", i, changes[i], back[i])
		}
	}
}
