package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"colorfulxml/internal/core"
)

// This file encodes committed mutation batches — slices of core.Change, the
// same logical change-log entries incremental snapshot maintenance replays —
// into WAL record payloads. The format is varint-framed and self-describing:
//
//	batch   := count:uvarint change*
//	change  := kind:byte elem:uvarint parent:uvarint
//	           color:str tag:str content:str
//	           nattrs:uvarint (name:str value:str)*
//	str     := len:uvarint bytes
//
// Decoding is strict: every length is bounds-checked against the remaining
// buffer, so arbitrary (fuzzed or corrupted) input fails cleanly instead of
// over-allocating or panicking.

// ErrBadBatch reports a malformed change-batch payload.
var ErrBadBatch = errors.New("wal: malformed change batch")

// EncodeChanges serializes a committed mutation batch into a record payload.
func EncodeChanges(changes []core.Change) []byte {
	buf := make([]byte, 0, 16+32*len(changes))
	buf = binary.AppendUvarint(buf, uint64(len(changes)))
	for _, ch := range changes {
		buf = append(buf, byte(ch.Kind))
		buf = binary.AppendUvarint(buf, uint64(ch.Elem))
		buf = binary.AppendUvarint(buf, uint64(ch.Parent))
		buf = appendString(buf, string(ch.Color))
		buf = appendString(buf, ch.Tag)
		buf = appendString(buf, ch.Content)
		buf = binary.AppendUvarint(buf, uint64(len(ch.Attrs)))
		for _, a := range ch.Attrs {
			buf = appendString(buf, a[0])
			buf = appendString(buf, a[1])
		}
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// DecodeChanges parses a record payload back into a mutation batch.
func DecodeChanges(payload []byte) ([]core.Change, error) {
	d := decoder{buf: payload}
	n := d.uvarint()
	// Each change occupies at least 6 bytes (kind + five 1-byte varints), so
	// an impossible count is rejected before any allocation.
	if n > uint64(len(payload)) {
		return nil, fmt.Errorf("%w: change count %d exceeds payload", ErrBadBatch, n)
	}
	changes := make([]core.Change, 0, n)
	for i := uint64(0); i < n; i++ {
		var ch core.Change
		ch.Kind = core.ChangeKind(d.byte())
		ch.Elem = core.NodeID(d.uvarint())
		ch.Parent = core.NodeID(d.uvarint())
		ch.Color = core.Color(d.string())
		ch.Tag = d.string()
		ch.Content = d.string()
		na := d.uvarint()
		if na > uint64(len(payload)) {
			return nil, fmt.Errorf("%w: attr count %d exceeds payload", ErrBadBatch, na)
		}
		for j := uint64(0); j < na && d.err == nil; j++ {
			name := d.string()
			value := d.string()
			ch.Attrs = append(ch.Attrs, [2]string{name, value})
		}
		if d.err != nil {
			return nil, fmt.Errorf("%w: change %d: %v", ErrBadBatch, i, d.err)
		}
		changes = append(changes, ch)
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadBatch, len(d.buf)-d.off)
	}
	return changes, nil
}

// decoder is a cursor with sticky error handling over a payload buffer.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%s at offset %d", msg, d.off)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated byte")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("string length exceeds payload")
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
