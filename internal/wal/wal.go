// Package wal implements the write-ahead log of the durable MCT store: an
// append-only sequence of CRC32C-checksummed records, each carrying one
// committed mutation batch, fsync'd (group commit) before the commit is
// acknowledged.
//
// Segment files are named wal-<seq>.log and partition the change stream:
// a checkpoint at sequence S captures every batch in segments < S, so
// recovery loads the newest checkpoint and replays the remaining segments in
// order. Only the final segment may end in a torn record (a write cut short
// by a crash); a bad checksum anywhere else — or one followed by further
// valid records — is reported as corruption, never silently applied.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"colorfulxml/internal/obs"
	"colorfulxml/internal/vfs"
)

// recHeaderSize is the fixed record header: payload length (4), CRC32C (4),
// sequence number (8).
const recHeaderSize = 16

// MaxPayload bounds a record payload, rejecting absurd lengths from
// corrupted headers before any allocation.
const MaxPayload = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is wrapped by every corruption report from this package.
var ErrCorrupt = errors.New("wal: corrupt segment")

// CorruptError pinpoints a damaged record: the segment file and the byte
// offset of the record that failed its checksum or framing.
type CorruptError struct {
	Segment string
	Offset  int64
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: segment %s: record at offset %d: %s", e.Segment, e.Offset, e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// Record is one decoded WAL record.
type Record struct {
	Seq     uint64
	Payload []byte
	Offset  int64
}

// crcOf computes the record checksum over the sequence number and payload,
// so neither can be altered without detection.
func crcOf(seq uint64, payload []byte) uint32 {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], seq)
	c := crc32.Update(0, castagnoli, tmp[:])
	return crc32.Update(c, castagnoli, payload)
}

// AppendRecord appends one framed record to buf.
func AppendRecord(buf []byte, seq uint64, payload []byte) []byte {
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crcOf(seq, payload))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// SegmentResult is the outcome of reading one segment.
type SegmentResult struct {
	Records []Record
	// Torn reports that the segment ends in a partially written record
	// (allowed only in the final segment); TornOffset is where it starts.
	Torn       bool
	TornOffset int64
}

// validRecordAt reports whether a complete, checksum-valid record starts at
// off — used to distinguish a torn tail (nothing decodable follows) from
// mid-log corruption (valid records follow the damaged one).
func validRecordAt(data []byte, off int64) bool {
	if int64(len(data))-off < recHeaderSize {
		return false
	}
	length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
	if length > MaxPayload || off+recHeaderSize+length > int64(len(data)) {
		return false
	}
	crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
	seq := binary.LittleEndian.Uint64(data[off+8 : off+16])
	payload := data[off+recHeaderSize : off+recHeaderSize+length]
	return crcOf(seq, payload) == crc
}

// ReadSegment decodes a segment image. final marks the last segment of the
// log, the only one where a trailing damaged record is interpreted as a torn
// write (and cleanly dropped) rather than corruption: every earlier segment
// was fully flushed before its successor was created.
func ReadSegment(data []byte, name string, final bool) (*SegmentResult, error) {
	res := &SegmentResult{}
	off := int64(0)
	fail := func(reason string) (*SegmentResult, error) {
		return nil, &CorruptError{Segment: name, Offset: off, Reason: reason}
	}
	torn := func() (*SegmentResult, error) {
		if !final {
			return fail("truncated record in non-final segment")
		}
		res.Torn = true
		res.TornOffset = off
		return res, nil
	}
	for off < int64(len(data)) {
		rem := int64(len(data)) - off
		if rem < recHeaderSize {
			return torn()
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		if length > MaxPayload {
			if final {
				return torn()
			}
			return fail(fmt.Sprintf("implausible record length %d", length))
		}
		if rem-recHeaderSize < length {
			return torn()
		}
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		seq := binary.LittleEndian.Uint64(data[off+8 : off+16])
		payload := data[off+recHeaderSize : off+recHeaderSize+length]
		if got := crcOf(seq, payload); got != crc {
			// A fully present record with a bad sum: if valid records follow,
			// the log was damaged after it was written — corruption. If
			// nothing decodable follows and this is the final segment, it is
			// the torn tail of a crashed write.
			if validRecordAt(data, off+recHeaderSize+length) {
				return fail(fmt.Sprintf("checksum mismatch (got %08x, want %08x)", got, crc))
			}
			if final {
				return torn()
			}
			return fail(fmt.Sprintf("checksum mismatch (got %08x, want %08x)", got, crc))
		}
		res.Records = append(res.Records, Record{Seq: seq, Payload: payload, Offset: off})
		off += recHeaderSize + length
	}
	return res, nil
}

// SyncPolicy selects when the writer fsyncs.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every commit acknowledgment (group commit:
	// one fsync may cover several concurrent appends). The default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS — faster, but a crash may lose
	// acknowledged commits. For benchmarks and bulk loads.
	SyncNever
)

// Writer appends checksummed records to one segment file with group-commit
// batching: concurrent Append calls coalesce their buffered records under a
// single write+fsync, so the fsync cost is amortized across the batch.
type Writer struct {
	mu      sync.Mutex // guards buf, bufRecs, nextSeq, size, err
	f       vfs.File
	name    string
	policy  SyncPolicy
	buf     []byte
	bufRecs int // records currently in buf (group-commit batch size)
	nextSeq uint64
	size    int64 // bytes durably appended (post-flush) plus buffered
	err     error // sticky: after a write/sync failure the segment state is unknown

	flushMu   sync.Mutex // serializes flush+fsync; held while mu is free
	syncedSeq uint64     // guarded by mu

	// retry is the transient-failure retry schedule for writes and fsyncs
	// (zero: fail on first error). Set before the first Append; not
	// synchronized.
	retry vfs.RetryPolicy
}

// NewWriter wraps an open segment file. startSeq is the sequence number the
// next appended record receives.
func NewWriter(f vfs.File, name string, startSeq uint64, policy SyncPolicy) *Writer {
	return &Writer{f: f, name: name, policy: policy, nextSeq: startSeq}
}

// SetRetry arms transient-failure retries (see vfs.RetryPolicy) for this
// writer's writes and fsyncs. Call before the first Append.
func (w *Writer) SetRetry(p vfs.RetryPolicy) { w.retry = p }

// Append frames payload as the next record, makes it durable per the sync
// policy, and returns its sequence number. Under SyncAlways, when Append
// returns nil the record has been fsync'd; concurrent appenders share one
// fsync (group commit).
func (w *Writer) Append(payload []byte) (uint64, error) {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	seq := w.nextSeq
	w.nextSeq++
	w.buf = AppendRecord(w.buf, seq, payload)
	w.bufRecs++
	w.size += int64(recHeaderSize + len(payload))
	w.mu.Unlock()
	obsAppends.Inc()
	obsBytes.Add(uint64(recHeaderSize + len(payload)))

	if err := w.flushThrough(seq); err != nil {
		return 0, err
	}
	return seq, nil
}

// flushThrough ensures every record up to and including seq is written and
// (under SyncAlways) fsync'd. Arriving appenders whose record was already
// covered by another flusher's fsync return immediately.
func (w *Writer) flushThrough(seq uint64) error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.syncedSeq > seq {
		w.mu.Unlock()
		return nil
	}
	pending := w.buf
	recs := w.bufRecs
	w.buf = nil
	w.bufRecs = 0
	highest := w.nextSeq // records below this are in pending
	w.mu.Unlock()

	err := w.writeAndSync(pending, recs, w.policy == SyncAlways)
	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		w.err = fmt.Errorf("wal: segment %s: %w", w.name, err)
		return w.err
	}
	w.syncedSeq = highest
	return nil
}

// Sync flushes any buffered records and fsyncs regardless of policy.
func (w *Writer) Sync() error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	pending := w.buf
	recs := w.bufRecs
	w.buf = nil
	w.bufRecs = 0
	highest := w.nextSeq
	w.mu.Unlock()

	err := w.writeAndSync(pending, recs, true)
	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		w.err = fmt.Errorf("wal: segment %s: %w", w.name, err)
		return w.err
	}
	w.syncedSeq = highest
	return nil
}

// writeAndSync delivers pending to the segment file and (when doSync) fsyncs
// it, retrying transient failures under one backoff schedule — the write and
// the fsync share the per-flush retry budget. A partially delivered write
// resumes from the written prefix: records are appended strictly
// sequentially, so completing the torn record in place is framing-safe, and
// recovery sees either the whole record or a dropped torn tail, never a
// duplicate. Caller holds flushMu (so exactly one writer touches the file)
// and must not hold mu (the backoff sleeps).
func (w *Writer) writeAndSync(pending []byte, recs int, doSync bool) error {
	b := vfs.NewBackoff(w.retry)
	for len(pending) > 0 {
		n, err := w.f.Write(pending)
		if n > 0 && n <= len(pending) {
			pending = pending[n:]
		}
		if err == nil {
			if len(pending) > 0 {
				return fmt.Errorf("short write: %d bytes left", len(pending))
			}
			break
		}
		delay, ok := b.Next(err)
		if !ok {
			return err
		}
		obsRetries.Inc()
		obsRetryBackoffNanos.Observe(int64(delay))
	}
	if !doSync {
		return nil
	}
	for {
		sw := obs.Start()
		err := w.f.Sync()
		obsFsyncs.Inc()
		obsSyncNanos.Observe(sw.ElapsedNanos())
		if err == nil {
			break
		}
		delay, ok := b.Next(err)
		if !ok {
			return err
		}
		obsRetries.Inc()
		obsRetryBackoffNanos.Observe(int64(delay))
	}
	if recs > 0 {
		obsBatchRecords.Observe(int64(recs))
	}
	return nil
}

// Size returns the segment's byte length including buffered records.
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// NextSeq returns the sequence number the next record will receive.
func (w *Writer) NextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// Close flushes and closes the segment file.
func (w *Writer) Close() error {
	err := w.Sync()
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: segment %s: %w", w.name, cerr)
	}
	return err
}

// Abandon closes the segment file without flushing buffered records and
// leaves the writer permanently failed. It is the disposal path for a writer
// whose segment is in an unknown state after an exhausted retry: the caller
// reseals the log around a fresh checkpoint instead of trusting this file.
func (w *Writer) Abandon() {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	_ = w.f.Close()
	w.err = fmt.Errorf("wal: segment %s: abandoned", w.name)
}
