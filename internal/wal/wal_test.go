package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"colorfulxml/internal/core"
	"colorfulxml/internal/vfs"
)

func TestChangeBatchRoundTrip(t *testing.T) {
	batch := []core.Change{
		{Kind: core.ChangeInsertLeaf, Elem: 7, Parent: 3, Color: "red", Tag: "item",
			Content: "hello", Attrs: [][2]string{{"id", "i7"}, {"lang", "en"}}},
		{Kind: core.ChangeContent, Elem: 7, Content: "world"},
		{Kind: core.ChangeAddDatabaseColor, Color: "green"},
		{Kind: core.ChangeDeleteSubtree, Elem: 9, Color: "red"},
	}
	enc := EncodeChanges(batch)
	dec, err := DecodeChanges(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec) != len(batch) {
		t.Fatalf("got %d changes, want %d", len(dec), len(batch))
	}
	for i := range batch {
		a, b := batch[i], dec[i]
		if a.Kind != b.Kind || a.Elem != b.Elem || a.Parent != b.Parent ||
			a.Color != b.Color || a.Tag != b.Tag || a.Content != b.Content ||
			len(a.Attrs) != len(b.Attrs) {
			t.Fatalf("change %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestDecodeChangesRejectsGarbage(t *testing.T) {
	for _, bad := range [][]byte{
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // huge count
		{0x01},             // count 1, no change
		{0x01, 0x00, 0x05}, // truncated mid-change
		append(EncodeChanges([]core.Change{{Kind: core.ChangeContent}}), 0xAA), // trailing byte
	} {
		if _, err := DecodeChanges(bad); err == nil {
			t.Errorf("DecodeChanges(%x) accepted garbage", bad)
		}
	}
}

func writeSegment(t *testing.T, path string, payloads ...[]byte) {
	t.Helper()
	f, err := vfs.OS.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, filepath.Base(path), 1, SyncAlways)
	for _, p := range payloads {
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-1.log")
	writeSegment(t, path, []byte("alpha"), []byte("beta"), []byte{})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReadSegment(data, "wal-1.log", true)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if res.Torn || len(res.Records) != 3 {
		t.Fatalf("got torn=%v records=%d", res.Torn, len(res.Records))
	}
	if string(res.Records[0].Payload) != "alpha" || res.Records[1].Seq != 2 {
		t.Fatalf("bad decode: %+v", res.Records)
	}
}

func TestSegmentTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-1.log")
	writeSegment(t, path, []byte("alpha"), []byte("beta-is-longer"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(data) - 1; cut > len(data)-int(recHeaderSize)-10; cut-- {
		res, err := ReadSegment(data[:cut], "wal-1.log", true)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !res.Torn || len(res.Records) != 1 {
			t.Fatalf("cut %d: torn=%v records=%d, want torn with 1 record", cut, res.Torn, len(res.Records))
		}
	}
	// The same truncation in a non-final segment is corruption.
	if _, err := ReadSegment(data[:len(data)-3], "wal-1.log", false); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("non-final truncation: got %v, want ErrCorrupt", err)
	}
}

func TestSegmentMidLogCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-1.log")
	writeSegment(t, path, []byte("alpha"), []byte("beta"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the FIRST record: the second record still
	// decodes, so this must be corruption even in the final segment.
	data[recHeaderSize] ^= 0xFF
	_, err = ReadSegment(data, "wal-1.log", true)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Offset != 0 || ce.Segment != "wal-1.log" {
		t.Fatalf("corruption not located: %v", err)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-1.log")
	f, err := vfs.OS.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, "wal-1.log", 1, SyncAlways)
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := w.Append([]byte{byte(i)}); err != nil {
				t.Errorf("append %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReadSegment(data, "wal-1.log", true)
	if err != nil || res.Torn {
		t.Fatalf("read: %v torn=%v", err, res.Torn)
	}
	if len(res.Records) != n {
		t.Fatalf("got %d records, want %d", len(res.Records), n)
	}
	seen := map[uint64]bool{}
	for _, r := range res.Records {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestCrashFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	// Measure a full run first.
	count := vfs.NewCrashFS(vfs.OS, -1)
	writeVia := func(fs vfs.FS, name string) error {
		f, err := fs.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		w := NewWriter(f, name, 1, SyncAlways)
		for i := 0; i < 4; i++ {
			if _, err := w.Append([]byte("payload-payload-payload")); err != nil {
				return err
			}
		}
		return w.Close()
	}
	if err := writeVia(count, "full.log"); err != nil {
		t.Fatal(err)
	}
	total := count.BytesWritten()
	// Crash two thirds through: the writer must observe the crash, and the
	// segment must read back as a valid prefix with (at most) a torn tail.
	crash := vfs.NewCrashFS(vfs.OS, total*2/3)
	if err := writeVia(crash, "torn.log"); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("got %v, want ErrCrashed", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "torn.log"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReadSegment(data, "torn.log", true)
	if err != nil {
		t.Fatalf("read after crash: %v", err)
	}
	if len(res.Records) >= 4 {
		t.Fatalf("crash lost nothing? records=%d", len(res.Records))
	}
	for _, r := range res.Records {
		if string(r.Payload) != "payload-payload-payload" {
			t.Fatalf("surviving record damaged: %q", r.Payload)
		}
	}
}
