package wal

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"colorfulxml/internal/vfs"
)

// testRetryPolicy retries instantly (no real sleeping) with a fixed seed.
func testRetryPolicy() vfs.RetryPolicy {
	return vfs.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Budget:      time.Second,
		Seed:        7,
		Sleep:       func(time.Duration) {},
	}
}

func openSegment(t *testing.T, fs vfs.FS, dir string) (*Writer, string) {
	t.Helper()
	name := filepath.Join(dir, "wal-00000001.log")
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	return NewWriter(f, name, 1, SyncAlways), name
}

func TestWriterRetriesTransientWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 1)
	w, name := openSegment(t, ffs, dir)
	w.SetRetry(testRetryPolicy())

	// Op 0 is the Create; op 1 the first Write. Fail it once, transiently.
	ffs.Schedule(1, vfs.Fault{Err: vfs.ErrIO})
	seq, err := w.Append([]byte("payload-a"))
	if err != nil {
		t.Fatalf("append through transient fault: %v", err)
	}
	if _, err := w.Append([]byte("payload-b")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := vfs.OS.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReadSegment(data, name, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 || res.Torn {
		t.Fatalf("recovered %d records (torn=%v), want 2 clean", len(res.Records), res.Torn)
	}
	if res.Records[0].Seq != seq {
		t.Fatalf("first record seq %d, want %d", res.Records[0].Seq, seq)
	}
}

func TestWriterContinuesPartialWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 1)
	w, name := openSegment(t, ffs, dir)
	w.SetRetry(testRetryPolicy())

	// The first Write delivers half its bytes then fails transiently; the
	// retry must complete the torn record in place, not re-append it.
	ffs.Schedule(1, vfs.Fault{Err: vfs.ErrDiskFull, PartialFrac: 0.5})
	if _, err := w.Append([]byte("0123456789abcdef")); err != nil {
		t.Fatalf("append through partial write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := vfs.OS.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReadSegment(data, name, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Torn {
		t.Fatalf("recovered %d records (torn=%v), want exactly 1 clean", len(res.Records), res.Torn)
	}
	if got := string(res.Records[0].Payload); got != "0123456789abcdef" {
		t.Fatalf("payload %q corrupted by continuation", got)
	}
}

func TestWriterRetriesTransientSync(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 1)
	w, _ := openSegment(t, ffs, dir)
	w.SetRetry(testRetryPolicy())

	// Op 0 Create, op 1 Write, op 2 the fsync.
	ffs.Schedule(2, vfs.Fault{Err: vfs.ErrIO})
	if _, err := w.Append([]byte("x")); err != nil {
		t.Fatalf("append through transient fsync fault: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriterExhaustedRetryGoesSticky(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 1)
	w, _ := openSegment(t, ffs, dir)
	w.SetRetry(testRetryPolicy())

	ffs.SetStanding(vfs.ErrIO) // outage longer than the retry schedule
	_, err := w.Append([]byte("x"))
	if !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("want ErrIO after exhausted retries, got %v", err)
	}
	ffs.Clear()
	// The writer is poisoned: the segment state is unknown.
	if _, err := w.Append([]byte("y")); err == nil {
		t.Fatal("poisoned writer accepted another append")
	}
}

func TestWriterRefusesPermanentFault(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 1)
	w, _ := openSegment(t, ffs, dir)
	w.SetRetry(testRetryPolicy())

	ffs.Schedule(1, vfs.Fault{Err: vfs.Permanent(vfs.ErrIO)})
	if _, err := w.Append([]byte("x")); err == nil {
		t.Fatal("retried through a permanent fault")
	}
	if ffs.Injected() != 1 {
		t.Fatalf("injected %d faults, want 1 (no retry consumed another)", ffs.Injected())
	}
}

func TestWriterAbandon(t *testing.T) {
	dir := t.TempDir()
	w, _ := openSegment(t, vfs.OS, dir)
	if _, err := w.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	w.Abandon()
	if _, err := w.Append([]byte("y")); err == nil {
		t.Fatal("abandoned writer accepted an append")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("abandoned writer synced")
	}
}
