package plan_test

import (
	"reflect"
	"strings"
	"testing"

	"colorfulxml/internal/engine"
	"colorfulxml/internal/fixtures"
	"colorfulxml/internal/plan"
	"colorfulxml/internal/storage"
)

// TestParallelLoweringPartitionsLargeScans: with parallelism on and the
// threshold low enough for the fixture, big scan leaves become exchanges and
// the result is unchanged.
func TestParallelLoweringPartitionsLargeScans(t *testing.T) {
	m := fixtures.NewMovieDB()
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := `document("db")/{red}descendant::movie[{red}child::name = "Duck Soup"]/{red}child::name`
	serial, err := plan.CompileQuery(src, plan.Options{Catalog: plan.StoreCatalog{Store: s}})
	if err != nil {
		t.Fatal(err)
	}
	par, err := plan.CompileQuery(src, plan.Options{
		Catalog:           plan.StoreCatalog{Store: s},
		Parallel:          true,
		ParallelWorkers:   3,
		ParallelThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := engine.Explain(par.Root)
	if !strings.Contains(ex, "Exchange[3 ways]") {
		t.Fatalf("parallel compile should partition the movie scan:\n%s", ex)
	}
	if !strings.Contains(ex, "part 3/3") {
		t.Fatalf("exchange should list its partitions:\n%s", ex)
	}
	sr, _, err := engine.Exec(s, serial.Root)
	if err != nil {
		t.Fatal(err)
	}
	pr, _, err := engine.Exec(s, par.Root)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sr, pr) {
		t.Fatalf("parallel rows diverge: %v vs %v", pr, sr)
	}
}

// TestParallelLoweringRespectsThreshold: scans below the threshold stay
// serial even when parallelism is enabled.
func TestParallelLoweringRespectsThreshold(t *testing.T) {
	m := fixtures.NewMovieDB()
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := plan.CompileQuery(
		`document("db")/{red}descendant::movie/{red}child::name`,
		plan.Options{
			Catalog:         plan.StoreCatalog{Store: s},
			Parallel:        true,
			ParallelWorkers: 4,
			// The fixture's biggest tag population is far below the default.
		})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(engine.Explain(c.Root), "Exchange") {
		t.Fatalf("tiny scans must not be parallelized:\n%s", engine.Explain(c.Root))
	}
}
