package plan

import (
	"container/list"
	"sync"

	"colorfulxml/internal/core"
)

// Cache is a shared LRU of compiled plans, keyed by query text plus the
// plan-relevant compilation options, and guarded by the storage stats/schema
// epoch: every entry remembers the epoch of the store image it was compiled
// against, and a probe whose serving snapshot has moved to a different epoch
// treats the entry as invalid (the cost choices — join order, scan
// partitioning, summary-vs-join lowering — were made from statistics that no
// longer describe the data). Content-only updates preserve the epoch, so the
// cache stays hot across the common point-update workload.
//
// The Catalog is deliberately NOT part of the key: it is a per-snapshot
// handle, while a cached plan is reused across snapshots of the same epoch.
// That is sound because compiled operators read everything from the
// execution's Ctx.S at Open — the catalog only steers cost choices, which
// the epoch protects.
//
// Only successful compilations enter the cache. ErrUnsupported (and any
// other compile failure) must bypass it entirely: the evaluator-fallback
// route stays invisible to cache statistics and can never pin a failure.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[cacheKey]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry

	// Per-cache counters (under mu), mirrored into the process-wide obs
	// instruments so BENCH snapshots and /debug/metrics see them too.
	hits          uint64
	misses        uint64
	evictions     uint64
	invalidations uint64
}

// cacheKey identifies a compilation: the query text and the option fields
// that change the emitted plan.
type cacheKey struct {
	query        string
	defaultColor core.Color
	parallel     bool
	workers      int
	threshold    int
}

type cacheEntry struct {
	key      cacheKey
	epoch    uint64
	compiled *Compiled
}

func keyFor(query string, opt Options) cacheKey {
	return cacheKey{
		query:        query,
		defaultColor: opt.DefaultColor,
		parallel:     opt.Parallel,
		workers:      opt.ParallelWorkers,
		threshold:    opt.ParallelThreshold,
	}
}

// DefaultCacheSize bounds a cache built with NewCache(0): generous next to
// the Table 2 workload's vocabulary (tens of templates), small next to the
// store.
const DefaultCacheSize = 256

// NewCache returns an empty plan cache holding at most capacity entries
// (<= 0 means DefaultCacheSize).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		cap:     capacity,
		entries: make(map[cacheKey]*list.Element),
		lru:     list.New(),
	}
}

// Get returns the cached plan for the query under the given options, if one
// exists and was compiled at the given epoch. An entry at a different epoch
// is removed (an invalidation) and reported as a miss.
func (c *Cache) Get(query string, opt Options, epoch uint64) (*Compiled, bool) {
	k := keyFor(query, opt)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		obsPlanCacheMisses.Inc()
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.epoch != epoch {
		c.removeLocked(el)
		c.invalidations++
		obsPlanCacheInvalidations.Inc()
		c.misses++
		obsPlanCacheMisses.Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	obsPlanCacheHits.Inc()
	return e.compiled, true
}

// Put stores a successfully compiled plan under the query/options key at the
// given epoch, evicting the least-recently-used entry if the cache is full.
// An existing entry for the key is replaced (a racing compile of the same
// query — both results are equally valid; last writer wins).
func (c *Cache) Put(query string, opt Options, epoch uint64, compiled *Compiled) {
	k := keyFor(query, opt)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		e := el.Value.(*cacheEntry)
		e.epoch = epoch
		e.compiled = compiled
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cap {
		c.removeLocked(c.lru.Back())
		c.evictions++
		obsPlanCacheEvictions.Inc()
	}
	c.entries[k] = c.lru.PushFront(&cacheEntry{key: k, epoch: epoch, compiled: compiled})
}

func (c *Cache) removeLocked(el *list.Element) {
	e := c.lru.Remove(el).(*cacheEntry)
	delete(c.entries, e.key)
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// CacheStats is a point-in-time snapshot of the cache's size and traffic,
// serialized by the /debug/plancache endpoint.
type CacheStats struct {
	Size          int    `json:"size"`
	Capacity      int    `json:"capacity"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
}

// Stats returns the cache's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:          c.lru.Len(),
		Capacity:      c.cap,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}
