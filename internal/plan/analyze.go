package plan

import (
	"fmt"
	"strconv"
	"strings"

	"colorfulxml/internal/core"
	"colorfulxml/internal/engine"
	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/pathexpr"
)

// Analyze turns a parsed query into the logical IR. Supported shapes are a
// bare (possibly predicated) colored path expression and a single FLWOR with
// for-clauses over path expressions, a conjunctive where clause, and a
// return clause that yields a variable, a relative path from one, or such a
// value wrapped in element constructors / createColor (the wrapping is
// read-only irrelevant to which nodes qualify, so it is stripped).
func Analyze(e pathexpr.Expr, defaultColor core.Color) (*Logical, error) {
	a := &analyzer{
		def:  defaultColor,
		lg:   &Logical{},
		vars: map[string]*VarPlan{},
		end:  map[string]core.Color{},
	}
	switch x := e.(type) {
	case *mcxquery.FLWOR:
		if err := a.flwor(x); err != nil {
			return nil, err
		}
	case *pathexpr.PathExpr:
		if err := a.barePath(x); err != nil {
			return nil, err
		}
	default:
		return nil, unsupportedf("%T as query root", e)
	}
	return a.lg, nil
}

type analyzer struct {
	def  core.Color
	lg   *Logical
	vars map[string]*VarPlan
	// end tracks each variable's binding color (the color of its last step).
	end map[string]core.Color
}

// barePath analyzes a top-level path expression as an anonymous single-
// variable query returning the selected nodes.
func (a *analyzer) barePath(p *pathexpr.PathExpr) error {
	if p.Var != "" {
		return unsupportedf("top-level path rooted at unbound $%s", p.Var)
	}
	if p.Doc == "" && !p.FromRoot {
		return unsupportedf("relative top-level path")
	}
	nav, attr, err := splitAttr(p.Steps)
	if err != nil {
		return err
	}
	steps, endC, err := a.resolveSteps(nav, a.def)
	if err != nil {
		return err
	}
	if len(steps) == 0 {
		return unsupportedf("path with no element steps")
	}
	vp := &VarPlan{Name: "_", Steps: steps}
	a.lg.Vars = []*VarPlan{vp}
	a.vars[vp.Name] = vp
	a.end[vp.Name] = endC
	a.lg.Out = Output{Var: vp.Name, Attr: attr}
	return nil
}

func (a *analyzer) flwor(f *mcxquery.FLWOR) error {
	if len(f.OrderBy) > 0 {
		return unsupportedf("order by clause")
	}
	for _, cl := range f.Clauses {
		if cl.Let {
			return unsupportedf("let clause")
		}
		pe, ok := cl.Expr.(*pathexpr.PathExpr)
		if !ok {
			return unsupportedf("for $%s in %T", cl.Var, cl.Expr)
		}
		var base string
		start := a.def
		switch {
		case pe.Doc != "" || pe.FromRoot:
		case pe.Var != "":
			if a.vars[pe.Var] == nil {
				return unsupportedf("for $%s in $%s: unbound base variable", cl.Var, pe.Var)
			}
			base = pe.Var
			start = a.end[base]
		default:
			return unsupportedf("for $%s in a relative path", cl.Var)
		}
		nav, attr, err := splitAttr(pe.Steps)
		if err != nil {
			return err
		}
		if attr != "" {
			return unsupportedf("for $%s binds an attribute", cl.Var)
		}
		steps, endC, err := a.resolveSteps(nav, start)
		if err != nil {
			return err
		}
		if len(steps) == 0 {
			return unsupportedf("for $%s binds no element step", cl.Var)
		}
		vp := &VarPlan{Name: cl.Var, Base: base, Steps: steps}
		a.lg.Vars = append(a.lg.Vars, vp)
		a.vars[cl.Var] = vp
		a.end[cl.Var] = endC
	}
	if len(a.lg.Vars) == 0 {
		return unsupportedf("FLWOR without for clauses")
	}
	if f.Where != nil {
		if err := a.where(f.Where); err != nil {
			return err
		}
	}
	return a.ret(f.Return)
}

// resolveSteps resolves colors and fuses the parser's expansion of "//"
// (descendant-or-self::node() followed by a child step) into one descendant
// step, returning the resolved chain and its final color.
func (a *analyzer) resolveSteps(steps []*pathexpr.Step, ctx core.Color) ([]LStep, core.Color, error) {
	var out []LStep
	for i := 0; i < len(steps); i++ {
		s := steps[i]
		axis := s.Axis
		if axis == pathexpr.AxisDescendantOrSelf && s.Test.Kind == pathexpr.TestNode && len(s.Preds) == 0 {
			if i+1 >= len(steps) || steps[i+1].Axis != pathexpr.AxisChild {
				return nil, "", unsupportedf("descendant-or-self step not part of a // abbreviation")
			}
			i++
			s = steps[i]
			axis = pathexpr.AxisDescendant
		}
		if s.Test.Kind != pathexpr.TestName {
			return nil, "", unsupportedf("node test %s", s.Test)
		}
		switch axis {
		case pathexpr.AxisChild, pathexpr.AxisDescendant, pathexpr.AxisParent, pathexpr.AxisAncestor:
		default:
			return nil, "", unsupportedf("axis %s", axis)
		}
		c := s.Color
		if c == "" {
			c = ctx
		}
		if c == "" {
			return nil, "", unsupportedf("step %s has no color and no context color", s)
		}
		ls := LStep{Color: c, Axis: axis, Tag: s.Test.Name}
		for _, p := range s.Preds {
			preds, err := a.pred(p, c)
			if err != nil {
				return nil, "", err
			}
			ls.Preds = append(ls.Preds, preds...)
		}
		out = append(out, ls)
		ctx = c
	}
	return out, ctx, nil
}

// splitAttr splits a trailing attribute step off a raw step list. Attribute
// axes anywhere else are not navigable.
func splitAttr(steps []*pathexpr.Step) ([]*pathexpr.Step, string, error) {
	for i, s := range steps {
		if s.Axis != pathexpr.AxisAttribute {
			continue
		}
		if i != len(steps)-1 || s.Test.Kind != pathexpr.TestName || len(s.Preds) > 0 {
			return nil, "", unsupportedf("non-terminal attribute step")
		}
		return steps[:i], s.Test.Name, nil
	}
	return steps, "", nil
}

// pred analyzes one step predicate into pushed-down LPreds. Conjunctions
// split; each conjunct must compare a relative path (or the context item)
// against a literal, or be a contains() call.
func (a *analyzer) pred(e pathexpr.Expr, ctx core.Color) ([]LPred, error) {
	switch x := e.(type) {
	case *pathexpr.Binary:
		if x.Op == pathexpr.OpAnd {
			l, err := a.pred(x.L, ctx)
			if err != nil {
				return nil, err
			}
			r, err := a.pred(x.R, ctx)
			if err != nil {
				return nil, err
			}
			return append(l, r...), nil
		}
		kind, ok := cmpKind(x.Op)
		if !ok {
			return nil, unsupportedf("predicate operator %s", x)
		}
		side, lit, flipped, err := literalSide(x)
		if err != nil {
			return nil, err
		}
		if flipped {
			kind = flipCmp(kind)
		}
		rel, attr, err := a.relPath(side, ctx)
		if err != nil {
			return nil, err
		}
		val, numeric := literalValue(lit)
		return []LPred{{Path: rel, Attr: attr, Pred: engine.Pred{Kind: kind, Value: val, Numeric: numeric}}}, nil
	case *pathexpr.Call:
		if x.Name == "contains" && len(x.Args) == 2 {
			lit, ok := x.Args[1].(*pathexpr.Literal)
			if !ok {
				return nil, unsupportedf("contains with non-literal needle")
			}
			rel, attr, err := a.relPath(x.Args[0], ctx)
			if err != nil {
				return nil, err
			}
			val, _ := literalValue(lit)
			return []LPred{{Path: rel, Attr: attr, Pred: engine.Pred{Kind: "contains", Value: val}}}, nil
		}
		return nil, unsupportedf("function %s() in predicate", x.Name)
	default:
		return nil, unsupportedf("%T predicate", e)
	}
}

// literalSide splits a comparison into its path side and literal side,
// reporting whether the operands were flipped.
func literalSide(b *pathexpr.Binary) (pathexpr.Expr, *pathexpr.Literal, bool, error) {
	if lit, ok := b.R.(*pathexpr.Literal); ok {
		return b.L, lit, false, nil
	}
	if lit, ok := b.L.(*pathexpr.Literal); ok {
		return b.R, lit, true, nil
	}
	return nil, nil, false, unsupportedf("comparison %s has no literal side", b)
}

// relPath analyzes a relative path used inside a predicate: the context item
// itself, or element steps with an optional trailing attribute.
func (a *analyzer) relPath(e pathexpr.Expr, ctx core.Color) ([]LStep, string, error) {
	switch x := e.(type) {
	case *pathexpr.ContextItem:
		return nil, "", nil
	case *pathexpr.PathExpr:
		if x.Doc != "" || x.FromRoot || x.Var != "" {
			return nil, "", unsupportedf("non-relative path %s in predicate", x)
		}
		nav, attr, err := splitAttr(x.Steps)
		if err != nil {
			return nil, "", err
		}
		steps, _, err := a.resolveSteps(nav, ctx)
		if err != nil {
			return nil, "", err
		}
		for _, st := range steps {
			if st.Color != steps[0].Color {
				return nil, "", unsupportedf("color change inside predicate path %s", x)
			}
			if st.Axis != pathexpr.AxisChild && st.Axis != pathexpr.AxisDescendant {
				return nil, "", unsupportedf("reverse axis inside predicate path %s", x)
			}
		}
		return steps, attr, nil
	default:
		return nil, "", unsupportedf("%T as predicate path", e)
	}
}

// where splits the where clause into conjuncts: variable joins and
// single-variable predicates.
func (a *analyzer) where(e pathexpr.Expr) error {
	if b, ok := e.(*pathexpr.Binary); ok && b.Op == pathexpr.OpAnd {
		if err := a.where(b.L); err != nil {
			return err
		}
		return a.where(b.R)
	}
	if c, ok := e.(*pathexpr.Call); ok {
		// where contains($v/path, "lit")
		if c.Name != "contains" || len(c.Args) != 2 {
			return unsupportedf("function %s() in where clause", c.Name)
		}
		p, ok := varPath(c.Args[0])
		if !ok {
			return unsupportedf("contains() over a non-variable path in where clause")
		}
		lit, ok := c.Args[1].(*pathexpr.Literal)
		if !ok {
			return unsupportedf("contains with non-literal needle")
		}
		rel, attr, err := a.relVarPath(p)
		if err != nil {
			return err
		}
		val, _ := literalValue(lit)
		return a.pushPred(p.Var, LPred{Path: rel, Attr: attr, Pred: engine.Pred{Kind: "contains", Value: val}})
	}
	b, ok := e.(*pathexpr.Binary)
	if !ok {
		return unsupportedf("%T in where clause", e)
	}
	kind, ok := cmpKind(b.Op)
	if !ok {
		return unsupportedf("operator in where clause: %s", b)
	}
	// $a = $b: element identity.
	if lv, okL := b.L.(*pathexpr.VarRef); okL {
		if rv, okR := b.R.(*pathexpr.VarRef); okR {
			if kind != "eq" {
				return unsupportedf("non-equality comparison of variables")
			}
			if err := a.bound(lv.Name, rv.Name); err != nil {
				return err
			}
			a.lg.Joins = append(a.lg.Joins, LJoin{Kind: JoinID, LeftVar: lv.Name, RightVar: rv.Name, Op: "eq"})
			return nil
		}
	}
	lp, lOK := varPath(b.L)
	rp, rOK := varPath(b.R)
	switch {
	case lOK && rOK:
		return a.varJoin(kind, lp, rp)
	case lOK || rOK:
		// $v/path CMP literal: push down onto the variable's last step.
		side, lit, flipped, err := literalSide(b)
		if err != nil {
			return err
		}
		if flipped {
			kind = flipCmp(kind)
		}
		p := side.(*pathexpr.PathExpr)
		rel, attr, err := a.relVarPath(p)
		if err != nil {
			return err
		}
		val, numeric := literalValue(lit)
		return a.pushPred(p.Var, LPred{Path: rel, Attr: attr, Pred: engine.Pred{Kind: kind, Value: val, Numeric: numeric}})
	default:
		return unsupportedf("where conjunct %s", b)
	}
}

// varJoin analyzes "$a/pathA CMP $b/pathB".
func (a *analyzer) varJoin(kind string, lp, rp *pathexpr.PathExpr) error {
	if err := a.bound(lp.Var, rp.Var); err != nil {
		return err
	}
	lSteps, lAttr, err := a.relVarPath(lp)
	if err != nil {
		return err
	}
	rSteps, rAttr, err := a.relVarPath(rp)
	if err != nil {
		return err
	}
	if lAttr != "" && rAttr != "" && len(lSteps) == 0 && len(rSteps) == 0 && kind == "eq" {
		a.lg.Joins = append(a.lg.Joins, LJoin{
			Kind: JoinAttr, LeftVar: lp.Var, RightVar: rp.Var,
			LeftAttr: lAttr, RightAttr: rAttr, Op: "eq",
		})
		return nil
	}
	if lAttr != "" || rAttr != "" {
		return unsupportedf("attribute in non-equality variable join")
	}
	a.lg.Joins = append(a.lg.Joins, LJoin{
		Kind: JoinPath, LeftVar: lp.Var, RightVar: rp.Var,
		LeftPath: lSteps, RightPath: rSteps, Op: kind,
		// Content-to-content comparisons atomize numerically (the workload
		// compares totals, quantities, costs).
		Numeric: true,
	})
	return nil
}

// relVarPath resolves the steps of a $v/... path relative to $v's binding
// color.
func (a *analyzer) relVarPath(p *pathexpr.PathExpr) ([]LStep, string, error) {
	nav, attr, err := splitAttr(p.Steps)
	if err != nil {
		return nil, "", err
	}
	steps, _, err := a.resolveSteps(nav, a.end[p.Var])
	if err != nil {
		return nil, "", err
	}
	return steps, attr, nil
}

// pushPred appends a where-clause predicate onto a variable's final step.
func (a *analyzer) pushPred(v string, p LPred) error {
	vp := a.vars[v]
	if vp == nil {
		return unsupportedf("unbound variable $%s in where clause", v)
	}
	if len(vp.Steps) == 0 {
		return unsupportedf("predicate on stepless variable $%s", v)
	}
	vp.Steps[len(vp.Steps)-1].Preds = append(vp.Steps[len(vp.Steps)-1].Preds, p)
	return nil
}

func (a *analyzer) bound(names ...string) error {
	for _, n := range names {
		if a.vars[n] == nil {
			return unsupportedf("unbound variable $%s in where clause", n)
		}
	}
	return nil
}

// varPath matches a $v/steps path over a bound variable.
func varPath(e pathexpr.Expr) (*pathexpr.PathExpr, bool) {
	p, ok := e.(*pathexpr.PathExpr)
	return p, ok && p != nil && p.Var != ""
}

// ret analyzes the return clause after stripping read-only result wrapping
// (createColor calls and element constructors around a single enclosed
// expression): which nodes qualify is unaffected by the wrapping.
func (a *analyzer) ret(e pathexpr.Expr) error {
	e = unwrapCtor(e)
	switch x := e.(type) {
	case *pathexpr.VarRef:
		if a.vars[x.Name] == nil {
			return unsupportedf("return of unbound $%s", x.Name)
		}
		a.lg.Out = Output{Var: x.Name}
		return nil
	case *pathexpr.PathExpr:
		if x.Var == "" || a.vars[x.Var] == nil {
			return unsupportedf("return path %s not rooted at a bound variable", x)
		}
		nav, attr, err := splitAttr(x.Steps)
		if err != nil {
			return err
		}
		steps, _, err := a.resolveSteps(nav, a.end[x.Var])
		if err != nil {
			return err
		}
		a.lg.Out = Output{Var: x.Var, Attr: attr, Path: steps}
		return nil
	default:
		return unsupportedf("%T in return clause", e)
	}
}

// unwrapCtor strips createColor(c, X) and element constructors whose content
// is a single enclosed expression (plus whitespace text), recursively.
func unwrapCtor(e pathexpr.Expr) pathexpr.Expr {
	for {
		switch x := e.(type) {
		case *pathexpr.Call:
			if (x.Name == "createColor" && len(x.Args) == 2) || (x.Name == "createCopy" && len(x.Args) == 1) {
				e = x.Args[len(x.Args)-1]
				continue
			}
			return e
		case *mcxquery.ElementCtor:
			var inner pathexpr.Expr
			n := 0
			for _, c := range x.Content {
				if t, ok := c.(*mcxquery.TextCtor); ok {
					if strings.TrimSpace(t.Text) == "" {
						continue
					}
					return e
				}
				inner = c
				n++
			}
			if n != 1 {
				return e
			}
			e = inner
		case *mcxquery.SeqExpr:
			if len(x.Items) != 1 {
				return e
			}
			e = x.Items[0]
		default:
			return e
		}
	}
}

// cmpKind maps comparison operators to engine.Pred kinds.
func cmpKind(op pathexpr.BinaryOp) (string, bool) {
	switch op {
	case pathexpr.OpEq:
		return "eq", true
	case pathexpr.OpNe:
		return "ne", true
	case pathexpr.OpLt:
		return "lt", true
	case pathexpr.OpLe:
		return "le", true
	case pathexpr.OpGt:
		return "gt", true
	case pathexpr.OpGe:
		return "ge", true
	default:
		return "", false
	}
}

func flipCmp(kind string) string {
	switch kind {
	case "lt":
		return "gt"
	case "le":
		return "ge"
	case "gt":
		return "lt"
	case "ge":
		return "le"
	default:
		return kind
	}
}

// literalValue renders a literal as the string the engine compares against
// and reports whether it atomizes to a number (selecting numeric comparison,
// matching the evaluator's atomization semantics).
func literalValue(l *pathexpr.Literal) (string, bool) {
	switch v := l.Val.(type) {
	case string:
		switch core.Atomize(v).(type) {
		case int64, float64:
			return v, true
		}
		return v, false
	case int:
		return strconv.Itoa(v), true
	case int64:
		return strconv.FormatInt(v, 10), true
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64), true
	default:
		return fmt.Sprint(v), false
	}
}
