package plan_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"colorfulxml/internal/core"
	"colorfulxml/internal/engine"
	"colorfulxml/internal/plan"
	"colorfulxml/internal/storage"
)

// libStore builds a single-color tree big enough that the path-summary probe
// beats the structural-join chain: a root with n <item> children, each
// holding one <name> and one <price> leaf.
func libStore(t *testing.T, n int) *storage.Store {
	t.Helper()
	db := core.NewDatabase("red")
	root, err := db.AddElement(db.Document(), "lib", "red")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		item, err := db.AddElement(root, "item", "red")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.AddElementText(item, "name", "red", fmt.Sprintf("n%03d", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.AddElementText(item, "price", "red", fmt.Sprintf("%d", i%7)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := storage.Load(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const libQuery = `document("db")/{red}descendant::item/{red}child::name`

func TestSummaryLoweringChoosesPathScan(t *testing.T) {
	s := libStore(t, 500)
	c, err := plan.CompileQuery(libQuery, plan.Options{Catalog: plan.StoreCatalog{Store: s}})
	if err != nil {
		t.Fatal(err)
	}
	ex := engine.Explain(c.Root)
	if !strings.Contains(ex, "PathScan{red}//item/name") {
		t.Fatalf("expected the summary probe access path:\n%s", ex)
	}
	if strings.Contains(ex, "StructJoin") {
		t.Fatalf("summary probe should replace the structural-join chain:\n%s", ex)
	}
}

// TestSummaryLoweringRowEquivalent: the probe plan returns exactly the rows
// of the structural-join plan (compiled with the summary disabled via a
// catalog that lacks PathCount).
type noPathCatalog struct{ plan.StoreCatalog }

// Shadow the promoted PathCount with an always-unavailable variant.
func (noPathCatalog) PathCount(core.Color, []storage.PathStep) (int, bool) { return 0, false }

func TestSummaryLoweringRowEquivalent(t *testing.T) {
	s := libStore(t, 300)
	probe, err := plan.CompileQuery(libQuery, plan.Options{Catalog: plan.StoreCatalog{Store: s}})
	if err != nil {
		t.Fatal(err)
	}
	joins, err := plan.CompileQuery(libQuery,
		plan.Options{Catalog: noPathCatalog{plan.StoreCatalog{Store: s}}})
	if err != nil {
		t.Fatal(err)
	}
	if ex := engine.Explain(joins.Root); !strings.Contains(ex, "StructJoin") {
		t.Fatalf("disabled summary should fall back to joins:\n%s", ex)
	}
	pr, _, err := engine.Exec(s, probe.Root)
	if err != nil {
		t.Fatal(err)
	}
	jr, _, err := engine.Exec(s, joins.Root)
	if err != nil {
		t.Fatal(err)
	}
	key := func(rows []engine.Row, col int) []storage.ElemID {
		out := make([]storage.ElemID, len(rows))
		for i, r := range rows {
			out[i] = r[col].Elem
		}
		return out
	}
	if !reflect.DeepEqual(key(pr, probe.OutCol), key(jr, joins.OutCol)) {
		t.Fatalf("summary probe diverges from join chain: %d vs %d rows", len(pr), len(jr))
	}
}

// TestSummaryLoweringCostGate: on a tiny store the fixed summary-probe cost
// dominates and the compiler keeps the structural-join chain.
func TestSummaryLoweringCostGate(t *testing.T) {
	s := libStore(t, 3)
	c, err := plan.CompileQuery(libQuery, plan.Options{Catalog: plan.StoreCatalog{Store: s}})
	if err != nil {
		t.Fatal(err)
	}
	if ex := engine.Explain(c.Root); strings.Contains(ex, "PathScan") {
		t.Fatalf("tiny input should keep the join chain:\n%s", ex)
	}
}

// TestSummaryLoweringIneligible: predicates on a non-final step, mixed
// colors, and base-relative chains keep the join lowering.
func TestSummaryLoweringIneligible(t *testing.T) {
	s := libStore(t, 500)
	for _, src := range []string{
		// Predicate on the intermediate step.
		`document("db")/{red}descendant::item[{red}child::price = "3"]/{red}child::name`,
		// Variable-rooted (base-relative) chain.
		`for $i in document("db")/{red}descendant::item return $i/{red}child::name`,
	} {
		c, err := plan.CompileQuery(src, plan.Options{Catalog: plan.StoreCatalog{Store: s}})
		if err != nil {
			t.Fatal(err)
		}
		if ex := engine.Explain(c.Root); strings.Contains(ex, "PathScan") {
			t.Fatalf("%s should not use the summary probe:\n%s", src, ex)
		}
	}
}

// TestSummaryLoweringFinalStepPredicate: a final-step predicate stays
// eligible and is applied after the probe.
func TestSummaryLoweringFinalStepPredicate(t *testing.T) {
	s := libStore(t, 500)
	src := `document("db")/{red}descendant::item/{red}child::name[. = "n042"]`
	c, err := plan.CompileQuery(src, plan.Options{Catalog: plan.StoreCatalog{Store: s}})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := engine.Exec(s, c.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("want the single matching name, got %d rows", len(rows))
	}
	e, err := s.Elem(rows[0][c.OutCol].Elem)
	if err != nil {
		t.Fatal(err)
	}
	if e.Content != "n042" {
		t.Fatalf("wrong node: %q", e.Content)
	}
}
