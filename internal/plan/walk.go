package plan

import (
	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/pathexpr"
)

// HasConstructors reports whether evaluating e would construct new nodes —
// element or text constructors, or createColor/createCopy calls. Such queries
// mutate the database (the paper's next-color constructor semantics) and must
// run on the reference evaluator; the plan compiler only reads.
func HasConstructors(e pathexpr.Expr) bool {
	found := false
	pathexpr.Walk(e, func(x pathexpr.Expr) {
		switch c := x.(type) {
		case *mcxquery.ElementCtor, *mcxquery.TextCtor:
			found = true
		case *pathexpr.Call:
			if c.Name == "createColor" || c.Name == "createCopy" {
				found = true
			}
		}
	})
	return found
}
