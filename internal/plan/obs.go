package plan

import "colorfulxml/internal/obs"

// Plan-cache instruments: process-wide totals across every Cache instance
// (one per DB today). The per-cache breakdown lives in Cache.Stats, served
// by /debug/plancache; these feed BENCH snapshots and /debug/metrics.
var (
	obsPlanCacheHits          = obs.NewCounter("plan_cache_hits_total")
	obsPlanCacheMisses        = obs.NewCounter("plan_cache_misses_total")
	obsPlanCacheEvictions     = obs.NewCounter("plan_cache_evictions_total")
	obsPlanCacheInvalidations = obs.NewCounter("plan_cache_invalidations_total")
)
