package plan

import (
	"math"
	"runtime"
	"sort"

	"colorfulxml/internal/core"
	"colorfulxml/internal/engine"
	"colorfulxml/internal/join"
	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/pathexpr"
	"colorfulxml/internal/storage"
)

// Compile analyzes and lowers a parsed query into a physical plan.
func Compile(e pathexpr.Expr, opt Options) (*Compiled, error) {
	lg, err := Analyze(e, opt.DefaultColor)
	if err != nil {
		return nil, err
	}
	return Lower(lg, opt)
}

// CompileQuery parses query text and compiles it.
func CompileQuery(src string, opt Options) (*Compiled, error) {
	e, err := mcxquery.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return Compile(e, opt)
}

// chain is one connected component of the plan under construction: an
// operator tree, the layout of its rows, the variables bound to columns, and
// an estimated output cardinality.
type chain struct {
	op     engine.Op
	cols   []ColInfo
	varCol map[string]int
	card   float64
}

type lowerer struct {
	cat    Catalog
	chains []*chain
	of     map[string]*chain
	// workers/threshold drive parallel leaf lowering; workers < 2 disables it.
	workers   int
	threshold float64
}

// Lower emits the physical plan for an analyzed query.
func Lower(lg *Logical, opt Options) (*Compiled, error) {
	lw := &lowerer{cat: opt.Catalog, of: map[string]*chain{}}
	if opt.Parallel {
		lw.workers = opt.ParallelWorkers
		if lw.workers <= 0 {
			lw.workers = runtime.GOMAXPROCS(0)
		}
		lw.threshold = float64(opt.ParallelThreshold)
		if lw.threshold <= 0 {
			lw.threshold = DefaultParallelThreshold
		}
	}
	for _, vp := range lg.Vars {
		var ch *chain
		anchor := -1
		lowered := false
		if vp.Base != "" {
			ch = lw.of[vp.Base]
			anchor = ch.varCol[vp.Base]
		} else {
			ch = &chain{varCol: map[string]int{}}
			lw.chains = append(lw.chains, ch)
			var err error
			if anchor, lowered, err = lw.trySummary(ch, vp); err != nil {
				return nil, err
			}
		}
		var err error
		if !lowered {
			for _, st := range vp.Steps {
				if anchor, err = lw.applyStep(ch, anchor, st); err != nil {
					return nil, err
				}
			}
		}
		ch.varCol[vp.Name] = anchor
		ch.cols[anchor].Var = vp.Name
		lw.of[vp.Name] = ch
	}
	// Hash-equality joins (identity, attribute) connect components cheaply;
	// inequality joins run as nested loops and go last, over the already
	// restricted inputs.
	joins := append([]LJoin{}, lg.Joins...)
	sort.SliceStable(joins, func(i, j int) bool {
		return joins[i].Kind != JoinPath && joins[j].Kind == JoinPath
	})
	for _, j := range joins {
		if err := lw.applyJoin(j); err != nil {
			return nil, err
		}
	}
	if len(lw.chains) != 1 {
		return nil, unsupportedf("where clause leaves %d unjoined query components", len(lw.chains))
	}
	ch := lw.chains[0]
	if lw.of[lg.Out.Var] != ch {
		return nil, unsupportedf("returned variable $%s is in an unjoined component", lg.Out.Var)
	}
	col := ch.varCol[lg.Out.Var]
	var err error
	for _, st := range lg.Out.Path {
		if col, err = lw.applyStep(ch, col, st); err != nil {
			return nil, err
		}
	}
	// Results are the distinct nodes of the output column: binding tuples
	// that select the same node (e.g. via different join partners) collapse.
	root := engine.Op(&engine.Dedup{Input: ch.op, Col: col})
	return &Compiled{
		Root:    root,
		Cols:    ch.cols,
		VarCols: ch.varCol,
		OutCol:  col,
		OutAttr: lg.Out.Attr,
		Logical: lg,
		Mem:     &engine.MemPool{},
	}, nil
}

// --- cost model -----------------------------------------------------------

// Batch-aware per-row cost constants (DESIGN.md §11). The batched executor
// amortizes pull overhead across BatchSize rows, so per-row costs reflect
// only the work each row itself causes: an index scan appends a node into a
// batch; a structural join probes the ancestor interval index once per
// input row; a summary probe resolves a structural record and participates
// in one start-order sort. The summary probe also pays a fixed cost to match
// the pattern against the summary's distinct paths (and, on first use per
// color, the amortized build).
const (
	costScanRow      = 1.0
	costJoinProbe    = 2.5
	costSummaryRow   = 1.2
	costSummaryProbe = 64.0
)

// chainCost estimates the batched structural-join lowering of a root chain:
// every step's tag population is scanned, and every step beyond the first
// probes the ancestor index once per surviving input row (the compiler's
// cardinality model keeps each step's whole tag population flowing, matching
// applyStep's frac computation for root chains).
func (lw *lowerer) chainCost(steps []LStep) float64 {
	card := lw.tagCard(steps[0].Color, steps[0].Tag)
	cost := card * costScanRow
	for _, st := range steps[1:] {
		sc := lw.tagCard(st.Color, st.Tag)
		cost += sc*costScanRow + card*costJoinProbe
		card = sc
	}
	return cost
}

// summaryCost estimates the summary-probe access path: a fixed pattern match
// over the summary plus per-result resolution.
func summaryCost(count float64) float64 {
	return costSummaryProbe + count*costSummaryRow
}

func (lw *lowerer) tagCard(c core.Color, tag string) float64 {
	if lw.cat == nil {
		return 1000
	}
	v := lw.cat.TagCard(c, tag)
	if v < 1 {
		v = 1
	}
	return v
}

func (lw *lowerer) eqSel(c core.Color, tag, value string) float64 {
	if lw.cat == nil {
		return 0.1
	}
	tc := lw.cat.TagCard(c, tag)
	if tc < 1 {
		return 1
	}
	return clamp01(lw.cat.EqCard(c, tag, value) / tc)
}

// predSel estimates the selectivity of one pushed-down predicate on a step.
func (lw *lowerer) predSel(st LStep, p LPred) float64 {
	c, tag := st.Color, st.Tag
	if len(p.Path) > 0 {
		last := p.Path[len(p.Path)-1]
		c, tag = last.Color, last.Tag
	}
	if p.Attr != "" {
		if p.Pred.Kind == "eq" {
			return 0.1
		}
		return 1.0 / 3
	}
	if p.Pred.Kind == "eq" {
		return lw.eqSel(c, tag, p.Pred.Value)
	}
	return 1.0 / 3
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// --- step lowering --------------------------------------------------------

// axisOf maps a navigation axis to the structural-join axis; the direction
// (who is the ancestor) is the caller's choice of Anc/Desc inputs.
func axisOf(a pathexpr.Axis) join.Axis {
	if a == pathexpr.AxisChild || a == pathexpr.AxisParent {
		return join.ParentChild
	}
	return join.AncestorDescendant
}

// stepAccess picks the access path for one step's element population: the
// content index when a predicate on the node's own content is an equality,
// a filtering tag scan for other self-content predicates, and a plain tag
// index scan otherwise. It returns the chosen scan, its estimated
// cardinality, and the predicates still to apply.
func (lw *lowerer) stepAccess(st LStep) (engine.Op, float64, []LPred) {
	for i, p := range st.Preds {
		if len(p.Path) != 0 || p.Attr != "" {
			continue
		}
		rest := append(append([]LPred{}, st.Preds[:i]...), st.Preds[i+1:]...)
		if p.Pred.Kind == "eq" {
			card := lw.tagCard(st.Color, st.Tag) * lw.eqSel(st.Color, st.Tag, p.Pred.Value)
			return &engine.EqContent{Color: st.Color, Tag: st.Tag, Value: p.Pred.Value}, card, rest
		}
		// A contains scan reads every candidate of the tag regardless of its
		// output cardinality, so the parallel decision uses the input size.
		op := lw.maybeParallel(&engine.ContainsScan{Color: st.Color, Tag: st.Tag, Pred: p.Pred},
			lw.tagCard(st.Color, st.Tag))
		return op, lw.tagCard(st.Color, st.Tag) / 3, rest
	}
	card := lw.tagCard(st.Color, st.Tag)
	return lw.maybeParallel(&engine.ScanTag{Color: st.Color, Tag: st.Tag}, card), card, st.Preds
}

// trySummary lowers a root-anchored step chain to a path-summary probe
// (engine.PathScan) when the chain is fully resolvable by the DataGuide-style
// summary and the probe costs less than the structural-join chain — the
// batched cost model's materialization choice: a summary probe materializes
// exactly the result set at Open and bulk-emits it, while the join chain
// streams every step's whole tag population through batch pipelines.
//
// Eligible chains have at least two steps (a single step is already a plain
// index scan), stay in one color (the summary is per-tree), use only forward
// child/descendant axes, and carry predicates only on the final step (the
// summary resolves label paths, not values; final-step predicates apply
// after the probe exactly as they would after a scan). The first step's
// pattern is forced to the descendant axis, mirroring the join lowering:
// applyStep's first step scans the whole tag population at any depth.
func (lw *lowerer) trySummary(ch *chain, vp *VarPlan) (int, bool, error) {
	pc, ok := lw.cat.(PathCatalog)
	if !ok || len(vp.Steps) < 2 {
		return 0, false, nil
	}
	c := vp.Steps[0].Color
	steps := make([]storage.PathStep, len(vp.Steps))
	for i, st := range vp.Steps {
		if st.Color != c {
			return 0, false, nil
		}
		if st.Axis != pathexpr.AxisChild && st.Axis != pathexpr.AxisDescendant {
			return 0, false, nil
		}
		if i < len(vp.Steps)-1 && len(st.Preds) > 0 {
			return 0, false, nil
		}
		steps[i] = storage.PathStep{Tag: st.Tag, Desc: i == 0 || st.Axis == pathexpr.AxisDescendant}
	}
	count, ok := pc.PathCount(c, steps)
	if !ok || summaryCost(float64(count)) >= lw.chainCost(vp.Steps) {
		return 0, false, nil
	}
	last := vp.Steps[len(vp.Steps)-1]
	ch.op = &engine.PathScan{Color: c, Steps: steps}
	ch.cols = []ColInfo{{Tag: last.Tag, Color: c}}
	ch.card = float64(count)
	anchor := 0
	preds := append([]LPred{}, last.Preds...)
	sort.SliceStable(preds, func(i, j int) bool {
		return lw.predSel(last, preds[i]) < lw.predSel(last, preds[j])
	})
	for _, p := range preds {
		var err error
		if anchor, err = lw.applyPred(ch, anchor, last, p); err != nil {
			return 0, false, err
		}
	}
	return anchor, true, nil
}

// maybeParallel partitions a scan leaf across an exchange when parallelism is
// enabled and the estimated input cardinality clears the threshold. Only
// partitionable leaves (tag and contains scans) qualify; everything else is
// returned unchanged.
func (lw *lowerer) maybeParallel(op engine.Op, card float64) engine.Op {
	if lw.workers < 2 || card < lw.threshold {
		return op
	}
	parts := make([]engine.Op, lw.workers)
	switch o := op.(type) {
	case *engine.ScanTag:
		for i := range parts {
			parts[i] = &engine.ScanTag{Color: o.Color, Tag: o.Tag, Part: i, Of: lw.workers}
		}
	case *engine.ContainsScan:
		for i := range parts {
			parts[i] = &engine.ContainsScan{Color: o.Color, Tag: o.Tag, Pred: o.Pred, Part: i, Of: lw.workers}
		}
	default:
		return op
	}
	return &engine.Exchange{Parts: parts}
}

// crossTo inserts a cross-tree color transition so column anchor is
// available in color to, returning the column holding that color.
func (lw *lowerer) crossTo(ch *chain, anchor int, to core.Color) int {
	if ch.cols[anchor].Color == to {
		return anchor
	}
	ch.op = &engine.CrossColor{Input: ch.op, Col: anchor, To: to}
	ch.cols = append(ch.cols, ColInfo{Tag: ch.cols[anchor].Tag, Color: to})
	return len(ch.cols) - 1
}

// applyStep extends a chain by one location step anchored at column anchor
// (anchor < 0: the step roots the chain) and returns the new step's column.
func (lw *lowerer) applyStep(ch *chain, anchor int, st LStep) (int, error) {
	var rest []LPred
	if ch.op == nil {
		if st.Axis == pathexpr.AxisParent || st.Axis == pathexpr.AxisAncestor {
			return 0, unsupportedf("path begins with reverse axis %s", st.Axis)
		}
		var op engine.Op
		op, ch.card, rest = lw.stepAccess(st)
		ch.op = op
		ch.cols = []ColInfo{{Tag: st.Tag, Color: st.Color}}
		anchor = 0
	} else {
		anchor = lw.crossTo(ch, anchor, st.Color)
		prev := ch.cols[anchor]
		scan, scanCard, r := lw.stepAccess(st)
		rest = r
		switch st.Axis {
		case pathexpr.AxisChild, pathexpr.AxisDescendant:
			ch.op = &engine.StructJoin{Anc: ch.op, Desc: scan, AncCol: anchor, DescCol: 0, Axis: axisOf(st.Axis)}
			ch.cols = append(ch.cols, ColInfo{Tag: st.Tag, Color: st.Color})
			anchor = len(ch.cols) - 1
			// The step keeps the fraction of the tag's population whose
			// ancestor survived the chain so far.
			frac := math.Min(1, ch.card/lw.tagCard(prev.Color, prev.Tag))
			ch.card = scanCard * frac
		case pathexpr.AxisParent, pathexpr.AxisAncestor:
			// Reverse step: the new nodes are the ancestors; structural join
			// output is anc columns then desc columns, so existing columns
			// shift right by one.
			ch.op = &engine.StructJoin{Anc: scan, Desc: ch.op, AncCol: 0, DescCol: anchor, Axis: axisOf(st.Axis)}
			ch.cols = append([]ColInfo{{Tag: st.Tag, Color: st.Color}}, ch.cols...)
			for v := range ch.varCol {
				ch.varCol[v]++
			}
			anchor = 0
			ch.card = math.Min(ch.card, scanCard)
		default:
			return 0, unsupportedf("axis %s", st.Axis)
		}
	}
	// Most selective predicates first.
	sort.SliceStable(rest, func(i, j int) bool {
		return lw.predSel(st, rest[i]) < lw.predSel(st, rest[j])
	})
	for _, p := range rest {
		var err error
		if anchor, err = lw.applyPred(ch, anchor, st, p); err != nil {
			return 0, err
		}
	}
	return anchor, nil
}

// applyPred applies one pushed-down predicate to the chain. Path predicates
// lower to a structural semijoin (ExistsJoin) against a probe chain built
// over the predicate's relative path; the probe's first-step column is the
// probe key, so nested predicates compile recursively. The anchored column
// may move when a cross-tree transition is needed.
func (lw *lowerer) applyPred(ch *chain, anchor int, st LStep, p LPred) (int, error) {
	sel := lw.predSel(st, p)
	switch {
	case len(p.Path) == 0 && p.Attr != "":
		ch.op = &engine.AttrFilter{Input: ch.op, Col: anchor, Name: p.Attr, Pred: p.Pred}
	case len(p.Path) == 0:
		ch.op = &engine.Filter{Input: ch.op, Col: anchor, Pred: p.Pred}
	default:
		probe, err := lw.predChain(p)
		if err != nil {
			return 0, err
		}
		col := anchor
		if pc := p.Path[0].Color; ch.cols[col].Color != pc {
			// The predicate navigates another hierarchy: transition first
			// (elements not in that hierarchy cannot satisfy it).
			ch.op = &engine.CrossColor{Input: ch.op, Col: col, To: pc}
			ch.cols = append(ch.cols, ColInfo{Tag: ch.cols[col].Tag, Color: pc})
			col = len(ch.cols) - 1
			anchor = col
		}
		ch.op = &engine.ExistsJoin{
			Input: ch.op, Probe: probe.op,
			Col: col, ProbeCol: 0,
			Axis: axisOf(p.Path[0].Axis),
		}
	}
	ch.card *= sel
	return anchor, nil
}

// predChain builds the probe plan for a path predicate: the chain of the
// relative path with the terminal comparison folded onto its last step.
// Column 0 remains the first step of the path, which is what the enclosing
// ExistsJoin probes against.
func (lw *lowerer) predChain(p LPred) (*chain, error) {
	steps := append([]LStep{}, p.Path...)
	last := steps[len(steps)-1]
	last.Preds = append(append([]LPred{}, last.Preds...), LPred{Attr: p.Attr, Pred: p.Pred})
	steps[len(steps)-1] = last
	ch := &chain{varCol: map[string]int{}}
	anchor := -1
	var err error
	for _, st := range steps {
		if anchor, err = lw.applyStep(ch, anchor, st); err != nil {
			return nil, err
		}
	}
	return ch, nil
}

// --- join lowering --------------------------------------------------------

// applyJoin merges the two chains a where-clause join relates. The smaller
// side (by estimated cardinality) becomes the hash-join build side; for
// inequality joins it becomes the materialized inner of the nested loop.
func (lw *lowerer) applyJoin(j LJoin) error {
	lch, rch := lw.of[j.LeftVar], lw.of[j.RightVar]
	if lch == rch {
		return unsupportedf("join between already-connected variables $%s and $%s", j.LeftVar, j.RightVar)
	}
	// Extend each side down its comparison path first (inequality joins
	// compare content reached by relative paths).
	lCol, rCol := lch.varCol[j.LeftVar], rch.varCol[j.RightVar]
	var err error
	for _, st := range j.LeftPath {
		if lCol, err = lw.applyStep(lch, lCol, st); err != nil {
			return err
		}
	}
	for _, st := range j.RightPath {
		if rCol, err = lw.applyStep(rch, rCol, st); err != nil {
			return err
		}
	}
	big, bigCol, small, smallCol, op := lch, lCol, rch, rCol, j.Op
	if big.card < small.card {
		big, bigCol, small, smallCol = small, smallCol, big, bigCol
		op = flipCmp(op)
	}
	var joined engine.Op
	var card float64
	switch j.Kind {
	case JoinID:
		joined = &engine.IDJoin{Left: big.op, Right: small.op, LeftCol: bigCol, RightCol: smallCol}
		card = math.Min(big.card, small.card)
	case JoinAttr:
		lKey, rKey := engine.Key{Attr: j.LeftAttr}, engine.Key{Attr: j.RightAttr}
		if big != lch {
			lKey, rKey = rKey, lKey
		}
		joined = &engine.ValueJoin{
			Left: big.op, Right: small.op,
			LeftCol: bigCol, RightCol: smallCol,
			LeftKey: lKey, RightKey: rKey,
		}
		card = math.Max(big.card, small.card)
	case JoinPath:
		joined = &engine.NLJoin{
			Left: big.op, Right: small.op,
			LeftCol: bigCol, RightCol: smallCol,
			Kind: op, Numeric: j.Numeric,
		}
		card = big.card * small.card / 3
	default:
		return unsupportedf("join kind %d", j.Kind)
	}
	lw.merge(big, small, joined, card)
	return nil
}

// merge fuses the right chain's columns after the left's and repoints its
// variables.
func (lw *lowerer) merge(left, right *chain, op engine.Op, card float64) {
	off := len(left.cols)
	left.op = op
	left.cols = append(left.cols, right.cols...)
	for v, c := range right.varCol {
		left.varCol[v] = c + off
	}
	left.card = card
	for v, ch := range lw.of {
		if ch == right {
			lw.of[v] = left
		}
	}
	for i, ch := range lw.chains {
		if ch == right {
			lw.chains = append(lw.chains[:i], lw.chains[i+1:]...)
			break
		}
	}
}
