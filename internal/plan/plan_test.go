package plan_test

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"colorfulxml/internal/core"
	"colorfulxml/internal/engine"
	"colorfulxml/internal/fixtures"
	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/pathexpr"
	"colorfulxml/internal/plan"
	"colorfulxml/internal/schema"
	"colorfulxml/internal/storage"
)

func testSchema() *schema.Schema {
	s := schema.New().AddColor("c", "root")
	s.AddProduction("c", "root", "mid*")
	s.AddProduction("c", "mid", "leaf*")
	s.SetQuant("mid", "c", 10)
	s.SetQuant("leaf", "c", 4)
	return s
}

// compileRun compiles src against the movie database and returns the
// distinct output-column values (attribute or content per the plan).
func compileRun(t *testing.T, src string) (*plan.Compiled, []string) {
	t.Helper()
	m := fixtures.NewMovieDB()
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := plan.CompileQuery(src, plan.Options{Catalog: plan.StoreCatalog{Store: s}})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rows, _, err := engine.Exec(s, c.Root)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	var out []string
	for _, r := range rows {
		e, err := s.Elem(r[c.OutCol].Elem)
		if err != nil {
			t.Fatal(err)
		}
		if c.OutAttr != "" {
			out = append(out, e.Attr(c.OutAttr))
		} else {
			out = append(out, e.Content)
		}
	}
	sort.Strings(out)
	return c, out
}

func TestAnalyzeFusesDescendantAbbreviation(t *testing.T) {
	e, err := mcxquery.ParseQuery(`document("db")//{red}movie`)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := plan.Analyze(e, "")
	if err != nil {
		t.Fatal(err)
	}
	steps := lg.Vars[0].Steps
	if len(steps) != 1 {
		t.Fatalf("want 1 fused step, got %d: %v", len(steps), steps)
	}
	if steps[0].Axis != pathexpr.AxisDescendant || steps[0].Tag != "movie" || steps[0].Color != "red" {
		t.Fatalf("bad fused step: %+v", steps[0])
	}
}

func TestAnalyzeColorInheritance(t *testing.T) {
	e, err := mcxquery.ParseQuery(`document("db")/{red}descendant::movie/child::name`)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := plan.Analyze(e, "")
	if err != nil {
		t.Fatal(err)
	}
	steps := lg.Vars[0].Steps
	if steps[1].Color != "red" {
		t.Fatalf("name step should inherit red, got %q", steps[1].Color)
	}
}

func TestCompilePredicateUsesContentIndex(t *testing.T) {
	c, out := compileRun(t,
		`document("db")/{red}descendant::movie[{red}child::name = "Duck Soup"]/{red}child::name`)
	if want := []string{"Duck Soup"}; !equal(out, want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	ex := engine.Explain(c.Root)
	if !strings.Contains(ex, "EqContent") {
		t.Fatalf("equality predicate should probe the content index:\n%s", ex)
	}
	if !strings.Contains(ex, "ExistsJoin") {
		t.Fatalf("child predicate should lower to a structural semijoin:\n%s", ex)
	}
}

func TestCompileCrossColorTransition(t *testing.T) {
	c, out := compileRun(t,
		`for $m in document("db")/{red}descendant::movie return $m/{green}child::votes`)
	if want := []string{"11", "14", "9"}; !equal(out, want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	if !strings.Contains(engine.Explain(c.Root), "CrossColor") {
		t.Fatalf("red-to-green step must lower to a color transition:\n%s", engine.Explain(c.Root))
	}
}

func TestCompileParentAxis(t *testing.T) {
	// movie-role nodes are red and blue; their red parents are the movies.
	c, out := compileRun(t,
		`document("db")/{blue}descendant::movie-role/{red}parent::movie/{red}child::name`)
	if want := []string{"12 Angry Men", "All About Eve", "Duck Soup", "Some Like It Hot"}; !equal(out, want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	if got := c.Cols[c.OutCol].Tag; got != "name" {
		t.Fatalf("output column should be name, got %q", got)
	}
}

func TestCompileIdentityJoin(t *testing.T) {
	c, out := compileRun(t, `
	  for $m in document("db")/{red}descendant::movie
	  for $n in document("db")/{green}descendant::movie
	  where $m = $n
	  return $m/{red}child::name`)
	// Only the Oscar-nominated movies participate in green.
	if want := []string{"12 Angry Men", "All About Eve", "Some Like It Hot"}; !equal(out, want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	if !strings.Contains(engine.Explain(c.Root), "IDJoin") {
		t.Fatalf("identity join expected:\n%s", engine.Explain(c.Root))
	}
}

func TestCompileInequalityJoin(t *testing.T) {
	c, out := compileRun(t, `
	  for $a in document("db")/{green}descendant::movie
	  for $b in document("db")/{green}descendant::movie
	  where $a/{green}child::votes > $b/{green}child::votes
	  return $a/{green}child::name`)
	// 14 and 11 votes beat somebody; 9 does not.
	if want := []string{"All About Eve", "Some Like It Hot"}; !equal(out, want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	if !strings.Contains(engine.Explain(c.Root), "NLJoin") {
		t.Fatalf("inequality join expected:\n%s", engine.Explain(c.Root))
	}
}

func TestCompileVarRootedBinding(t *testing.T) {
	_, out := compileRun(t, `
	  for $g in document("db")/{red}descendant::movie-genre[{red}child::name = "Comedy"]
	  for $m in $g/{red}descendant::movie
	  return $m/{red}child::name`)
	// Duck Soup is under Slapstick, which nests inside Comedy.
	if want := []string{"All About Eve", "Duck Soup", "Some Like It Hot"}; !equal(out, want) {
		t.Fatalf("got %v, want %v", out, want)
	}
}

func TestCompiledAgreesWithEvaluator(t *testing.T) {
	queries := []string{
		`document("db")/{red}descendant::movie[{red}child::name = "Duck Soup"]/{red}child::name`,
		`for $m in document("db")/{red}descendant::movie return $m/{green}child::votes`,
		`for $m in document("db")/{red}descendant::movie
		 for $n in document("db")/{green}descendant::movie
		 where $m = $n return $m/{red}child::name`,
	}
	for _, src := range queries {
		_, compiled := compileRun(t, src)
		m := fixtures.NewMovieDB()
		seq, err := mcxquery.NewEvaluator(m.DB).Query(src)
		if err != nil {
			t.Fatalf("evaluator: %v", err)
		}
		var ref []string
		for _, it := range seq {
			s, _ := core.StringValue(it.Node, it.Color)
			ref = append(ref, s)
		}
		ref = distinct(ref)
		if !equal(compiled, ref) {
			t.Errorf("compiled %v != evaluator %v for %s", compiled, ref, src)
		}
	}
}

func TestUnsupportedConstructsReportErrUnsupported(t *testing.T) {
	m := fixtures.NewMovieDB()
	s, err := storage.Load(m.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		`for $m in document("db")/{red}descendant::movie
		 let $n := $m/{red}child::name return $n`,
		`for $m in document("db")/{red}descendant::movie
		 order by $m/{red}child::name return $m`,
		`distinct-values(document("db")/{red}descendant::movie)`,
	} {
		_, cerr := plan.CompileQuery(src, plan.Options{Catalog: plan.StoreCatalog{Store: s}})
		if !errors.Is(cerr, plan.ErrUnsupported) {
			t.Errorf("want ErrUnsupported for %s, got %v", src, cerr)
		}
	}
}

func TestSchemaCatalogCardinalities(t *testing.T) {
	// A two-level schema: root with 10 children, each with 4 leaves.
	sc := plan.SchemaCatalog{Schema: testSchema()}
	if got := sc.TagCard("c", "leaf"); got != 40 {
		t.Fatalf("leaf cardinality: got %v, want 40", got)
	}
	if got := sc.EqCard("c", "leaf", "x"); got != 4 {
		t.Fatalf("leaf eq cardinality: got %v, want 4", got)
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func distinct(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
