package plan_test

import (
	"fmt"
	"sync"
	"testing"

	"colorfulxml/internal/plan"
)

func cacheOpts() plan.Options {
	return plan.Options{DefaultColor: "red"}
}

func mustCompiled(t *testing.T) *plan.Compiled {
	t.Helper()
	// The cache never inspects the plan; an empty Compiled is enough.
	return &plan.Compiled{}
}

func TestCacheHitMissAndEpochInvalidation(t *testing.T) {
	c := plan.NewCache(4)
	opt := cacheOpts()

	if _, ok := c.Get("q1", opt, 1); ok {
		t.Fatal("hit on empty cache")
	}
	p1 := mustCompiled(t)
	c.Put("q1", opt, 1, p1)

	got, ok := c.Get("q1", opt, 1)
	if !ok || got != p1 {
		t.Fatalf("Get = %v, %v; want cached plan", got, ok)
	}

	// Same query at a moved epoch: the entry is invalidated, not served.
	if _, ok := c.Get("q1", opt, 2); ok {
		t.Fatal("stale-epoch entry served")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after invalidation, want 0", c.Len())
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Invalidations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheKeyIncludesOptions(t *testing.T) {
	c := plan.NewCache(4)
	a := plan.Options{DefaultColor: "red"}
	b := plan.Options{DefaultColor: "red", Parallel: true, ParallelWorkers: 4}
	c.Put("q", a, 1, mustCompiled(t))
	if _, ok := c.Get("q", b, 1); ok {
		t.Fatal("plan compiled without parallelism served to a parallel-options probe")
	}
	if _, ok := c.Get("q", a, 1); !ok {
		t.Fatal("matching options missed")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := plan.NewCache(2)
	opt := cacheOpts()
	c.Put("a", opt, 1, mustCompiled(t))
	c.Put("b", opt, 1, mustCompiled(t))
	// Touch a so b is the LRU victim.
	if _, ok := c.Get("a", opt, 1); !ok {
		t.Fatal("miss on a")
	}
	c.Put("c", opt, 1, mustCompiled(t))
	if _, ok := c.Get("b", opt, 1); ok {
		t.Fatal("LRU victim b still cached")
	}
	if _, ok := c.Get("a", opt, 1); !ok {
		t.Fatal("recently used a evicted")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheConcurrentChurn(t *testing.T) {
	c := plan.NewCache(8)
	opt := cacheOpts()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				q := fmt.Sprintf("q%d", (g+i)%24)
				if _, ok := c.Get(q, opt, uint64(i%3)); !ok {
					c.Put(q, opt, uint64(i%3), &plan.Compiled{})
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("Len = %d exceeds capacity", c.Len())
	}
}
