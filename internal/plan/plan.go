// Package plan compiles colored path expressions (internal/pathexpr) and
// single-FLWOR MCXQuery queries (internal/mcxquery) into physical plans over
// the streaming engine operators (internal/engine).
//
// The paper hand-specified every physical plan ("we manually specified the
// query plan", Section 6.2); this package automates that step. Compilation
// has two phases:
//
//   - Analyze turns the parsed expression into a small logical IR: one
//     VarPlan (a chain of colored location steps with pushed-down
//     predicates) per for-variable, the value/identity joins of the where
//     clause, and the output designator of the return clause.
//   - Lower walks the IR and emits engine operators, choosing index scans
//     (tag index, content index), structural-join order, cross-tree color
//     transitions and hash-join build sides from cardinality statistics
//     supplied by a Catalog.
//
// The compiler is deliberately partial: constructs it cannot lower (let
// clauses, order by, distinct-values, general expressions) report
// ErrUnsupported so callers can fall back to the reference tree-walking
// evaluator. Everything it does lower is verified against both the hand
// plans and the evaluator by internal/workload's differential tests.
package plan

import (
	"errors"
	"fmt"

	"colorfulxml/internal/core"
	"colorfulxml/internal/engine"
	"colorfulxml/internal/pathexpr"
	"colorfulxml/internal/schema"
	"colorfulxml/internal/storage"
)

// ErrUnsupported marks query constructs outside the compilable subset.
// Callers should fall back to the tree-walking evaluator when they see it.
var ErrUnsupported = errors.New("unsupported by the plan compiler")

func unsupportedf(format string, args ...any) error {
	return fmt.Errorf("plan: %s: %w", fmt.Sprintf(format, args...), ErrUnsupported)
}

// LStep is one resolved location step: its color is concrete (inherited
// colors have been substituted) and the parser's descendant-or-self::node()
// expansion of "//" has been fused back into a single descendant step.
type LStep struct {
	Color core.Color
	// Axis is one of AxisChild, AxisDescendant, AxisParent, AxisAncestor.
	Axis  pathexpr.Axis
	Tag   string
	Preds []LPred
}

func (s LStep) String() string {
	return fmt.Sprintf("{%s}%s::%s", s.Color, s.Axis, s.Tag)
}

// LPred is a pushed-down predicate on a step: a relative path (possibly
// empty, meaning the context node itself), an optional terminal attribute,
// and the comparison to apply to the addressed string value.
type LPred struct {
	Path []LStep
	Attr string
	Pred engine.Pred
}

// VarPlan is the chain of steps binding one for-variable, starting either at
// the document root (Base == "") or at another variable's binding.
type VarPlan struct {
	Name  string
	Base  string
	Steps []LStep
}

// JoinKind classifies a where-clause join.
type JoinKind uint8

// Where-clause join kinds.
const (
	// JoinID is "$a = $b" on nodes: element identity.
	JoinID JoinKind = iota
	// JoinAttr is "$a/@x = $b/@y": attribute value equality.
	JoinAttr
	// JoinPath compares content reached by relative paths, possibly with an
	// inequality ("$a/p < $b/q").
	JoinPath
)

// LJoin is one conjunct of the where clause relating two variables.
type LJoin struct {
	Kind                JoinKind
	LeftVar, RightVar   string
	LeftAttr, RightAttr string
	LeftPath, RightPath []LStep
	// Op is the comparison kind for JoinPath ("eq", "lt", "le", "gt", "ge",
	// "ne"); equality for the other kinds.
	Op      string
	Numeric bool
}

// Output designates the result of the query: a variable, optionally
// navigated further by Path, optionally projected to an attribute.
type Output struct {
	Var  string
	Attr string
	Path []LStep
}

// Logical is the analyzed query.
type Logical struct {
	Vars  []*VarPlan
	Joins []LJoin
	Out   Output
}

// Catalog supplies the cardinality statistics the cost model consumes.
type Catalog interface {
	// TagCard estimates the number of elements with a tag in a color.
	TagCard(c core.Color, tag string) float64
	// EqCard estimates how many of them have exactly the given content.
	EqCard(c core.Color, tag, value string) float64
}

// PathCatalog is an optional Catalog extension: exact cardinalities of
// root-anchored label paths, served by a DataGuide-style path summary
// (storage.PathSummary). A catalog that implements it enables the
// summary-probe access path (engine.PathScan) for fully-resolvable colored
// path expressions.
type PathCatalog interface {
	// PathCount returns the exact number of nodes on paths matching steps in
	// color c, and whether a summary could be consulted.
	PathCount(c core.Color, steps []storage.PathStep) (int, bool)
}

// StoreCatalog reads exact cardinalities from a loaded store's tag and
// content indexes (index-only, no record reads).
type StoreCatalog struct{ Store *storage.Store }

// TagCard implements Catalog.
func (sc StoreCatalog) TagCard(c core.Color, tag string) float64 {
	return float64(sc.Store.CountTag(c, tag))
}

// EqCard implements Catalog.
func (sc StoreCatalog) EqCard(c core.Color, tag, value string) float64 {
	return float64(sc.Store.CountContent(c, tag, value))
}

// PathCount implements PathCatalog against the store's lazily built path
// summary. A summary build failure (torn store) just disables the access
// path; the structural-join lowering remains available.
func (sc StoreCatalog) PathCount(c core.Color, steps []storage.PathStep) (int, bool) {
	ps, err := sc.Store.PathSummary(c)
	if err != nil {
		return 0, false
	}
	return ps.Count(steps), true
}

// SchemaCatalog estimates cardinalities from schema quant statistics (paper
// Section 5.1): the expected population of a tag is the product of the
// average child counts along its parent chain in that colored hierarchy.
type SchemaCatalog struct{ Schema *schema.Schema }

// TagCard implements Catalog.
func (sc SchemaCatalog) TagCard(c core.Color, tag string) float64 {
	card := 1.0
	cur := tag
	for depth := 0; depth < 64; depth++ {
		card *= sc.Schema.Quant(cur, c)
		parent := sc.Schema.ParentIn(cur, c)
		if parent == "" || parent == cur {
			break
		}
		cur = parent
	}
	return card
}

// EqCard implements Catalog. Without value histograms the schema assumes
// one-in-ten equality selectivity.
func (sc SchemaCatalog) EqCard(c core.Color, tag, value string) float64 {
	return sc.TagCard(c, tag) * 0.1
}

// DefaultParallelThreshold is the estimated scan cardinality above which a
// parallel compilation partitions an index-scan leaf across an exchange.
// Below it, the fixed cost of spawning workers and shipping rows through
// channels outweighs the scan itself.
const DefaultParallelThreshold = 1024

// Options configures compilation.
type Options struct {
	// DefaultColor is used by location steps that have no color and no
	// context color to inherit (single-hierarchy representations).
	DefaultColor core.Color
	// Catalog supplies cardinalities; nil falls back to uniform guesses.
	Catalog Catalog
	// Parallel enables intra-query parallelism: index-scan leaves whose
	// estimated cardinality reaches ParallelThreshold are partitioned into
	// contiguous start-order slices executed by an engine.Exchange across
	// ParallelWorkers goroutines, with an order-preserving merge.
	Parallel bool
	// ParallelWorkers is the partition fan-out; <= 0 means GOMAXPROCS.
	ParallelWorkers int
	// ParallelThreshold overrides DefaultParallelThreshold when > 0.
	ParallelThreshold int
}

// ColInfo describes one column of the compiled plan's rows.
type ColInfo struct {
	// Var is the variable bound to this column, if any.
	Var string
	// Tag and Color identify the structural nodes the column holds.
	Tag   string
	Color core.Color
}

// Compiled is a lowered plan.
type Compiled struct {
	// Root is the physical plan; its rows' layout is described by Cols.
	Root engine.Op
	Cols []ColInfo
	// VarCols maps each for-variable to its column.
	VarCols map[string]int
	// OutCol is the result column; OutAttr the projected attribute
	// (empty: the element's content / the element itself).
	OutCol  int
	OutAttr string
	// Logical is the analyzed IR the plan was lowered from.
	Logical *Logical
	// Mem recycles execution scratch memory across runs of this plan. A
	// compiled plan is the natural owner of its executions' working set:
	// reuse only materializes when the plan object itself is reused — a
	// cache hit or a prepared statement — while a one-shot compilation
	// starts cold and recycles nothing. Executors pass it to
	// engine.ExecBatchesPooled; it is safe for any number of concurrent
	// executions.
	Mem *engine.MemPool
}
