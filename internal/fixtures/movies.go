// Package fixtures builds small, well-known MCT databases used across the
// test suites: chiefly the movie database of the paper's Figure 2, with its
// red movie-genre hierarchy, green Oscar movie-award hierarchy and blue actor
// hierarchy.
package fixtures

import (
	"fmt"

	"colorfulxml/internal/core"
)

// Colors of the movie database.
const (
	Red   = core.Color("red")
	Green = core.Color("green")
	Blue  = core.Color("blue")
)

// MovieDB is the constructed Figure 2 database plus named handles to its
// interesting nodes.
type MovieDB struct {
	DB    *core.Database
	Nodes map[string]*core.Node
}

// Node returns a named node, panicking on unknown names (fixture misuse).
func (m *MovieDB) Node(name string) *core.Node {
	n, ok := m.Nodes[name]
	if !ok {
		panic(fmt.Sprintf("fixtures: unknown node %q", name))
	}
	return n
}

// NewMovieDB builds the Figure 2 movie database:
//
//   - red: movie-genres > {Comedy > {Slapstick}, Drama}, movies under their
//     most-specific genre, each movie with name and movie-role children, each
//     movie-role with a name;
//   - green: movie-awards > Oscar > years, with Oscar-nominated movies adopted
//     under their nomination year and given green votes children;
//   - blue: actors with names; movie-role nodes adopted under their actor.
//
// The movies: "All About Eve" (comedy, Oscar 1950, Bette Davis as Margo
// Channing, 14 votes), "Some Like It Hot" (comedy, Oscar 1959, Marilyn Monroe
// as Sugar, 11 votes), "Duck Soup" (slapstick, not nominated, Groucho Marx as
// Rufus T. Firefly), "12 Angry Men" (drama, Oscar 1957, Henry Fonda as Juror
// 8, 9 votes).
func NewMovieDB() *MovieDB {
	db := core.NewDatabase(Red, Green, Blue)
	m := &MovieDB{DB: db, Nodes: map[string]*core.Node{}}
	doc := db.Document()

	must := func(n *core.Node, err error) *core.Node {
		if err != nil {
			panic(err)
		}
		return n
	}
	mustErr := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	el := func(key string, parent *core.Node, name string, c core.Color) *core.Node {
		n := must(db.AddElement(parent, name, c))
		m.Nodes[key] = n
		return n
	}
	elText := func(key string, parent *core.Node, name string, c core.Color, text string) *core.Node {
		n := must(db.AddElementText(parent, name, c, text))
		m.Nodes[key] = n
		return n
	}

	// Red hierarchy: genres.
	genres := el("genres", doc, "movie-genres", Red)
	comedy := el("comedy", genres, "movie-genre", Red)
	elText("comedy-name", comedy, "name", Red, "Comedy")
	slapstick := el("slapstick", comedy, "movie-genre", Red)
	elText("slapstick-name", slapstick, "name", Red, "Slapstick")
	drama := el("drama", genres, "movie-genre", Red)
	elText("drama-name", drama, "name", Red, "Drama")

	// Green hierarchy: Oscar best-movie awards by year.
	awards := el("awards", doc, "movie-awards", Green)
	oscar := el("oscar", awards, "movie-award", Green)
	elText("oscar-name", oscar, "name", Green, "Oscar Best Movie")
	y1950 := el("y1950", oscar, "year", Green)
	elText("y1950-name", y1950, "name", Green, "1950")
	y1957 := el("y1957", oscar, "year", Green)
	elText("y1957-name", y1957, "name", Green, "1957")
	y1959 := el("y1959", oscar, "year", Green)
	elText("y1959-name", y1959, "name", Green, "1959")

	// Blue hierarchy: actors.
	actors := el("actors", doc, "actors", Blue)
	addActor := func(key, name string) *core.Node {
		a := el(key, actors, "actor", Blue)
		elText(key+"-name", a, "name", Blue, name)
		return a
	}
	bette := addActor("bette", "Bette Davis")
	marilyn := addActor("marilyn", "Marilyn Monroe")
	groucho := addActor("groucho", "Groucho Marx")
	fonda := addActor("fonda", "Henry Fonda")

	// Movies.
	type movieSpec struct {
		key, name string
		genre     *core.Node
		award     *core.Node // nil when not nominated
		votes     string
		actor     *core.Node
		roleName  string
	}
	specs := []movieSpec{
		{"eve", "All About Eve", comedy, y1950, "14", bette, "Margo Channing"},
		{"hot", "Some Like It Hot", comedy, y1959, "11", marilyn, "Sugar"},
		{"duck", "Duck Soup", slapstick, nil, "", groucho, "Rufus T. Firefly"},
		{"angry", "12 Angry Men", drama, y1957, "9", fonda, "Juror 8"},
	}
	for _, s := range specs {
		mv := el(s.key, s.genre, "movie", Red)
		nameEl := elText(s.key+"-name", mv, "name", Red, s.name)
		if s.award != nil {
			mustErr(db.Adopt(s.award, mv, Green))
			// Paper Section 2.1: "the children name nodes of movie nodes
			// have all the same colors as their parents".
			mustErr(db.Adopt(mv, nameEl, Green))
			elText(s.key+"-votes", mv, "votes", Green, s.votes)
		}
		role := el(s.key+"-role", mv, "movie-role", Red)
		roleName := elText(s.key+"-role-name", role, "name", Red, s.roleName)
		mustErr(db.Adopt(s.actor, role, Blue))
		// movie-role and its name are red and blue (paper Section 2.2).
		mustErr(db.Adopt(role, roleName, Blue))
	}

	if err := db.Validate(); err != nil {
		panic(fmt.Sprintf("fixtures: movie database invalid: %v", err))
	}
	return m
}
