package chaostest

import (
	"os"
	"testing"

	"colorfulxml/internal/lint/linttest"
)

// TestMain verifies the chaos harness reaps every writer, reader, and
// fault-injection goroutine it spawns, even across induced crashes.
func TestMain(m *testing.M) {
	os.Exit(linttest.VerifyTestMain(m))
}
