package chaostest

import (
	"path/filepath"
	"testing"
)

// TestChaosAcceptance is the acceptance run: at least 500 injected fault
// events against concurrent writers and readers, differentially verified.
func TestChaosAcceptance(t *testing.T) {
	cfg := DefaultConfig(filepath.Join(t.TempDir(), "db"), 1)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos: %+v", rep)
	if rep.Events < int64(cfg.Events) {
		t.Fatalf("only %d fault events injected, want >= %d", rep.Events, cfg.Events)
	}
	if rep.Acked == 0 {
		t.Fatal("no commit was ever acknowledged under chaos")
	}
	if rep.Reads == 0 {
		t.Fatal("no verification read completed under chaos")
	}
	if rep.Outages > 0 && rep.Heals == 0 {
		t.Fatalf("outages injected but no heal recorded: %+v", rep)
	}
}

// TestChaosSeeds runs shorter schedules across several seeds so schedule
// shapes beyond the acceptance seed stay covered.
func TestChaosSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed chaos in -short mode")
	}
	for _, seed := range []int64{7, 23, 99} {
		seed := seed
		t.Run(filepath.Base(string(rune('a'+seed%26))), func(t *testing.T) {
			cfg := DefaultConfig(filepath.Join(t.TempDir(), "db"), seed)
			cfg.Events = 150
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Events < int64(cfg.Events) {
				t.Fatalf("only %d fault events injected, want >= %d", rep.Events, cfg.Events)
			}
		})
	}
}
