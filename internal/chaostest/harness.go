// Package chaostest is the runtime chaos harness: it drives a live colorful
// database — concurrent writers, concurrent readers, the background probe
// and scrubber all running — while a deterministic, seeded fault schedule
// injects disk failures underneath it, and differentially verifies the
// fault-tolerance contract:
//
//   - no acknowledged commit is ever lost (recovery finds every acked write);
//   - reads never observe a rolled-back mutation, live or after reopen;
//   - the database returns to Healthy once the faults clear;
//   - nothing deadlocks (the harness runs under -race in CI).
//
// The schedule interleaves three fault shapes: transient single-operation
// faults absorbed by the retry layer, rate faults (a fraction of all
// durability operations failing), and standing outages that force the
// degrade -> probe -> heal cycle. Everything derives from Config.Seed, so a
// failing run reproduces exactly.
//
// Unlike internal/crashtest (which kills simulated processes between
// operations and checks recovery), chaostest never stops the process: it is
// about the serving path staying correct while the disk misbehaves.
package chaostest

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"colorfulxml/colorful"
	"colorfulxml/internal/core"
	"colorfulxml/internal/obs"
	"colorfulxml/internal/vfs"
)

// retriesNow reads the process-global transient-retry counters the storage
// layer maintains; Run reports the delta across the run.
func retriesNow() uint64 {
	c := obs.Default.Snapshot().Counters
	return c["wal_retries_total"] + c["storage_retries_total"]
}

// Config parameterizes one chaos run. The zero value is not runnable; use
// DefaultConfig as a base.
type Config struct {
	// Dir is the database directory (required; caller owns cleanup).
	Dir string
	// Seed drives the fault schedule and all harness randomness.
	Seed int64
	// Events is the minimum number of injected fault events before the
	// schedule winds down.
	Events int
	// Writers and Readers size the concurrent workload.
	Writers int
	Readers int
	// Rate is the background transient-fault probability while a rate window
	// is active (0..1).
	Rate float64
	// OutageEvery inserts a standing outage after this many schedule rounds.
	OutageEvery int
}

// DefaultConfig returns the acceptance-grade configuration: at least 500
// injected fault events against 4 writers and 4 readers.
func DefaultConfig(dir string, seed int64) Config {
	return Config{
		Dir:         dir,
		Seed:        seed,
		Events:      500,
		Writers:     4,
		Readers:     4,
		Rate:        0.2,
		OutageEvery: 8,
	}
}

// Report is what one chaos run measured.
type Report struct {
	// Events is the number of faults actually injected.
	Events int64
	// Writes counts attempted commits; Acked the acknowledged ones; Rejected
	// the ones refused or rolled back (degraded/read-only).
	Writes   int
	Acked    int
	Rejected int
	// Reads counts verification reads performed by the reader goroutines.
	Reads int64
	// Degrades and Heals are deltas of the health machinery counters across
	// the run.
	Degrades uint64
	Heals    uint64
	// Retries is the delta of the storage-layer transient-retry counters
	// (WAL appends/fsyncs plus checkpoint installs) across the run: commits
	// that hit a fault and were absorbed by backoff rather than surfacing.
	// The counters are process-global, so a concurrently running database
	// would be included; the harness owns its process in practice.
	Retries uint64
	// Outages is the number of standing-outage windows injected; MTTRMillis
	// the mean time from clearing an outage to the database reporting
	// Healthy again.
	Outages    int
	MTTRMillis float64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// chaosColor is the color the workload writes under.
const chaosColor colorful.Color = "chaos"

// quickRetry is the retry schedule chaos runs use: real backoff shape, no
// real sleeping, so a run injecting hundreds of faults stays fast.
func quickRetry(seed int64) *vfs.RetryPolicy {
	return &vfs.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Budget:      time.Second,
		Seed:        seed | 1,
		Sleep:       func(time.Duration) {},
	}
}

// Run executes one chaos run and verifies the fault-tolerance contract,
// returning measurements. Any contract violation is an error.
func Run(cfg Config) (Report, error) {
	if cfg.Dir == "" {
		return Report{}, errors.New("chaostest: Config.Dir is required")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ffs := vfs.NewFaultFS(vfs.OS, cfg.Seed)
	db, err := colorful.OpenOptions(cfg.Dir, colorful.Options{
		FS:            ffs,
		Retry:         quickRetry(cfg.Seed),
		ProbeInterval: time.Millisecond,
		ScrubInterval: 5 * time.Millisecond,
	}, chaosColor)
	if err != nil {
		return Report{}, fmt.Errorf("chaostest: open: %w", err)
	}
	defer db.Close()
	baseInfo := db.HealthInfo()
	baseRetries := retriesNow()
	docID := db.Document().ID()
	start := time.Now()

	var (
		rep      Report
		mu       sync.Mutex // guards acked/refused/rep write counters
		acked    = map[string]bool{}
		refused  = map[string]bool{}
		stop     = make(chan struct{})
		violence atomic.Pointer[string] // first contract violation
	)
	violate := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		violence.CompareAndSwap(nil, &msg)
	}

	var wg sync.WaitGroup
	// Writers: uniquely-named elements; the ack log is the ground truth the
	// final differential check verifies recovery against.
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("e-w%d-%d", w, i)
				root := db.NodeByID(docID)
				_, err := db.AddElementText(root, name, chaosColor, "v")
				mu.Lock()
				rep.Writes++
				switch {
				case err == nil:
					rep.Acked++
					acked[name] = true
				case errors.Is(err, colorful.ErrReadOnly):
					rep.Rejected++
					refused[name] = true
				case errors.Is(err, colorful.ErrFailed), errors.Is(err, colorful.ErrClosed):
					mu.Unlock()
					violate("writer %d: database left serving: %v", w, err)
					return
				default:
					mu.Unlock()
					violate("writer %d: unexpected commit error: %v", w, err)
					return
				}
				mu.Unlock()
			}
		}(w)
	}
	// Readers: every result set must consist of acked or still-in-flight
	// writes only — a refused (rolled-back) name appearing is a violation.
	for r := 0; r < cfg.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				items, err := db.Query(`document("db")/{chaos}child::*`)
				if err != nil {
					violate("reader %d: query failed: %v", r, err)
					return
				}
				atomic.AddInt64(&rep.Reads, 1)
				mu.Lock()
				for _, it := range items {
					if it.Node != nil && refused[it.Node.Name()] {
						name := it.Node.Name()
						mu.Unlock()
						violate("reader %d: observed rolled-back write %s", r, name)
						return
					}
				}
				mu.Unlock()
			}
		}(r)
	}

	// The seeded fault schedule. Rounds alternate rate windows, targeted
	// single-operation faults, and (every OutageEvery rounds) a standing
	// outage with its heal timed for MTTR.
	var mttrSum time.Duration
	for round := 0; ffs.Injected() < int64(cfg.Events); round++ {
		if v := violence.Load(); v != nil {
			break
		}
		switch {
		case cfg.OutageEvery > 0 && round%cfg.OutageEvery == cfg.OutageEvery-1:
			rep.Outages++
			ffs.SetStanding(vfs.Permanent(vfs.ErrIO))
			time.Sleep(time.Duration(1+rng.Intn(5)) * time.Millisecond)
			ffs.Clear()
			healStart := time.Now()
			if !awaitHealthy(db, 10*time.Second) {
				violate("outage %d: database did not heal (health=%v)", rep.Outages, db.Health())
			}
			mttrSum += time.Since(healStart)
		case rng.Intn(2) == 0:
			// Rate window: a slice of all durability operations fails.
			errs := []error{vfs.ErrIO, vfs.ErrDiskFull}
			ffs.SetRate(cfg.Rate, errs[rng.Intn(len(errs))])
			time.Sleep(time.Duration(1+rng.Intn(3)) * time.Millisecond)
			ffs.SetRate(0, nil)
		default:
			// Targeted burst: the next few operations fail, some partially.
			base := ffs.Ops()
			for k := int64(0); k < int64(1+rng.Intn(4)); k++ {
				f := vfs.Fault{Err: vfs.ErrIO}
				if rng.Intn(3) == 0 {
					f.PartialFrac = rng.Float64()
				}
				ffs.Schedule(base+k, f)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Wind down: clear every fault source, let the database heal, stop the
	// workload.
	ffs.SetRate(0, nil)
	ffs.Clear()
	if !awaitHealthy(db, 10*time.Second) {
		violate("database did not return to Healthy after faults cleared (health=%v)", db.Health())
	}
	close(stop)
	wg.Wait()
	rep.Events = ffs.Injected()
	rep.Elapsed = time.Since(start)
	if rep.Outages > 0 {
		rep.MTTRMillis = float64(mttrSum.Milliseconds()) / float64(rep.Outages)
	}
	info := db.HealthInfo()
	rep.Degrades = info.Degrades - baseInfo.Degrades
	rep.Heals = info.Heals - baseInfo.Heals
	rep.Retries = retriesNow() - baseRetries
	if v := violence.Load(); v != nil {
		return rep, errors.New("chaostest: " + *v)
	}

	// A post-heal write must commit: the serving path is fully restored.
	root := db.NodeByID(docID)
	if _, err := db.AddElementText(root, "post-chaos", chaosColor, "v"); err != nil {
		return rep, fmt.Errorf("chaostest: post-heal commit failed: %w", err)
	}
	acked["post-chaos"] = true
	rep.Writes++
	rep.Acked++
	if err := db.Close(); err != nil {
		return rep, fmt.Errorf("chaostest: close: %w", err)
	}

	// Differential verification: recover the directory on a clean filesystem
	// and compare against the ack log. Healing resealed the log around the
	// committed state, so recovery must see exactly the acked set.
	db2, err := colorful.Open(cfg.Dir, chaosColor)
	if err != nil {
		return rep, fmt.Errorf("chaostest: recovery failed: %w", err)
	}
	defer db2.Close()
	recovered := map[string]bool{}
	for _, n := range db2.TreeNodes(chaosColor) {
		if n.Kind() == core.KindElement && (strings.HasPrefix(n.Name(), "e-w") || n.Name() == "post-chaos") {
			recovered[n.Name()] = true
		}
	}
	for name := range acked {
		if !recovered[name] {
			return rep, fmt.Errorf("chaostest: acked commit %s lost (recovered %d of %d)", name, len(recovered), len(acked))
		}
	}
	for name := range recovered {
		if refused[name] {
			return rep, fmt.Errorf("chaostest: rolled-back write %s resurrected by recovery", name)
		}
		if !acked[name] {
			return rep, fmt.Errorf("chaostest: recovery invented write %s never acknowledged", name)
		}
	}
	return rep, nil
}

// awaitHealthy polls the health state up to the deadline.
func awaitHealthy(db *colorful.DB, limit time.Duration) bool {
	deadline := time.Now().Add(limit)
	for db.Health() != colorful.Healthy {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}
