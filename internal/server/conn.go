package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"colorfulxml/colorful"
	"colorfulxml/internal/obs"
	"colorfulxml/internal/wire"
)

// conn is one client connection. Everything except the atomic counters and
// wakeMu is owned by the handler goroutine; the session, statement table,
// and cursor table never cross goroutines.
type conn struct {
	s  *Server
	nc net.Conn
	r  *wire.Reader
	w  *wire.Writer

	sess       *colorful.Session
	stmts      map[uint64]*colorful.Stmt
	cursors    map[uint64]*cursor
	nextStmt   uint64
	nextCursor uint64

	stmtsOpen   atomic.Int64
	cursorsOpen atomic.Int64

	// wakeMu serializes read-deadline updates between the handler (arming a
	// blocking read) and Shutdown (waking it with a past deadline), closing
	// the race where a wake lands between the drain check and the arm. Leaf
	// lock: nothing else is acquired while it is held.
	wakeMu sync.Mutex
}

// cursor is a materialized Execute result being drained by Fetches.
type cursor struct {
	items []wire.Item
	off   int
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		s:       s,
		nc:      nc,
		r:       wire.NewReader(nc),
		w:       wire.NewWriter(nc),
		stmts:   map[uint64]*colorful.Stmt{},
		cursors: map[uint64]*cursor{},
	}
}

// armRead prepares the next blocking read. Under wakeMu: if the server is
// already draining the deadline is set in the past, so the read returns
// immediately instead of blocking until the client's next frame.
func (c *conn) armRead(timeout time.Duration) {
	c.wakeMu.Lock()
	defer c.wakeMu.Unlock()
	switch {
	case c.s.draining.Load():
		c.nc.SetReadDeadline(time.Unix(1, 0))
	case timeout > 0:
		c.nc.SetReadDeadline(time.Now().Add(timeout))
	default:
		c.nc.SetReadDeadline(time.Time{})
	}
}

// wake unblocks the handler's pending read during Shutdown.
func (c *conn) wake() {
	c.wakeMu.Lock()
	defer c.wakeMu.Unlock()
	c.nc.SetReadDeadline(time.Unix(1, 0))
}

// run is the connection handler: handshake, then a strict request/response
// loop. The drain invariant lives here — once a request frame has been
// fully read, its response is always written before the connection closes.
func (c *conn) run() {
	defer c.nc.Close()
	c.sess = c.s.db.Session()
	defer c.sess.Close()
	defer func() {
		obsStmtsOpen.Add(-c.stmtsOpen.Load())
		obsCursorsOpen.Add(-c.cursorsOpen.Load())
		c.stmtsOpen.Store(0)
		c.cursorsOpen.Store(0)
	}()

	if err := c.handshake(); err != nil {
		obsHandshakeFailures.Inc()
		c.s.logf("%s: handshake failed: %v", c.nc.RemoteAddr(), err)
		return
	}

	for {
		c.armRead(0)
		typ, payload, err := c.r.ReadFrame()
		if err != nil {
			if isDeadlineErr(err) && c.s.draining.Load() {
				c.sendDrain("server shutting down")
			} else if !errors.Is(err, io.EOF) {
				c.s.logf("%s: read: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		c.s.requests.Add(1)
		obsRequests.Inc()
		if err := c.handle(typ, payload); err != nil {
			c.s.logf("%s: write: %v", c.nc.RemoteAddr(), err)
			return
		}
		c.s.responses.Add(1)
		obsResponses.Inc()
		if c.s.draining.Load() {
			c.sendDrain("server shutting down")
			return
		}
	}
}

// handshake expects Hello as the very first frame and answers Welcome.
func (c *conn) handshake() error {
	c.armRead(c.s.opts.HandshakeTimeout)
	typ, payload, err := c.r.ReadFrame()
	if err != nil {
		return err
	}
	if typ != wire.TypeHello {
		c.writeError(wire.CodeProtocol, fmt.Sprintf("first frame must be Hello, got %v", typ))
		return fmt.Errorf("first frame %v", typ)
	}
	hello, err := wire.DecodeHello(payload)
	if err != nil {
		c.writeError(wire.CodeProtocol, err.Error())
		return err
	}
	if hello.Proto != wire.ProtoVersion {
		c.writeError(wire.CodeProtocol, fmt.Sprintf("protocol version %d not supported (server speaks %d)", hello.Proto, wire.ProtoVersion))
		return fmt.Errorf("protocol version %d", hello.Proto)
	}
	return c.w.WriteFrame(wire.TypeWelcome, wire.Welcome{Proto: wire.ProtoVersion, Server: c.s.opts.Name}.Encode())
}

// sendDrain tells the client no further requests will be read, half-closes
// the write side so everything already written is delivered, and briefly
// drains the read side so closing the socket cannot reset undelivered
// responses.
func (c *conn) sendDrain(reason string) {
	if err := c.w.WriteFrame(wire.TypeDrain, wire.Drain{Reason: reason}.Encode()); err != nil {
		return
	}
	if tc, ok := c.nc.(*net.TCPConn); ok {
		tc.CloseWrite() //nolint:errcheck // best effort: the conn closes right after
		c.nc.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		io.Copy(io.Discard, c.nc) //nolint:errcheck // discarding until EOF or deadline
	}
}

// handle dispatches one request and writes its complete response. The
// returned error is transport-level only; request failures become Error
// frames and return nil.
func (c *conn) handle(typ wire.Type, payload []byte) error {
	sw := obs.Start()
	var err error
	switch typ {
	case wire.TypeQuery:
		err = c.handleQuery(payload)
		obsQueryNanos.Observe(sw.ElapsedNanos())
	case wire.TypePrepare:
		err = c.handlePrepare(payload)
		obsPrepareNanos.Observe(sw.ElapsedNanos())
	case wire.TypeExecute:
		err = c.handleExecute(payload)
		obsExecuteNanos.Observe(sw.ElapsedNanos())
	case wire.TypeFetch:
		err = c.handleFetch(payload)
		obsFetchNanos.Observe(sw.ElapsedNanos())
	case wire.TypeCloseCursor:
		err = c.handleCloseCursor(payload)
	case wire.TypeCloseStmt:
		err = c.handleCloseStmt(payload)
	case wire.TypeUpdate:
		err = c.handleUpdate(payload)
		obsUpdateNanos.Observe(sw.ElapsedNanos())
	case wire.TypePing:
		err = c.w.WriteFrame(wire.TypePong, nil)
		obsPingNanos.Observe(sw.ElapsedNanos())
	case wire.TypeHealth:
		err = c.handleHealth()
		obsHealthNanos.Observe(sw.ElapsedNanos())
	case wire.TypeStats:
		err = c.handleStats()
		obsStatsNanos.Observe(sw.ElapsedNanos())
	default:
		err = c.writeError(wire.CodeBadRequest, fmt.Sprintf("unexpected frame type %v", typ))
	}
	return err
}

// writeError answers the current request with a typed Error frame.
func (c *conn) writeError(code wire.ErrCode, msg string) error {
	c.s.errorResp.Add(1)
	obsErrorResponses.Inc()
	return c.w.WriteFrame(wire.TypeError, wire.ErrorMsg{Code: code, Msg: msg}.Encode())
}

// errCode classifies an execution error for the wire, so the typed
// sentinels — and with them colorful.IsRetryable — survive the network.
func errCode(err error) wire.ErrCode {
	switch {
	case errors.Is(err, colorful.ErrOverloaded):
		return wire.CodeOverloaded
	case errors.Is(err, colorful.ErrReadOnly) || errors.Is(err, colorful.ErrDegraded):
		return wire.CodeReadOnly
	case errors.Is(err, colorful.ErrFailed):
		return wire.CodeFailed
	case errors.Is(err, colorful.ErrSessionClosed):
		return wire.CodeSessionClosed
	case errors.Is(err, colorful.ErrClosed):
		return wire.CodeClosed
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return wire.CodeCanceled
	default:
		return wire.CodeQuery
	}
}

// reqCtx derives the request context from the deadline budget the client
// sent. Zero means no deadline.
func reqCtx(deadlineMillis uint64) (context.Context, context.CancelFunc) {
	if deadlineMillis == 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), time.Duration(deadlineMillis)*time.Millisecond)
}

// toWireItems flattens query results for the wire: node ID (0 for atomic
// values), color, text value.
func toWireItems(items []colorful.Item) []wire.Item {
	out := make([]wire.Item, len(items))
	for i, it := range items {
		w := wire.Item{Color: string(it.Color), Value: it.Value}
		if it.Node != nil {
			w.Node = uint64(it.Node.ID())
		}
		out[i] = w
	}
	return out
}

// writeItemsStream chunks items into Items frames; the last one carries
// More == false.
func (c *conn) writeItemsStream(cursorID uint64, items []wire.Item, chunk int) error {
	if chunk <= 0 {
		chunk = c.s.opts.ChunkItems
	}
	off := 0
	for {
		end := off + chunk
		if end > len(items) {
			end = len(items)
		}
		more := end < len(items)
		msg := wire.Items{Cursor: cursorID, More: more, Items: items[off:end]}
		if err := c.w.WriteFrame(wire.TypeItems, msg.Encode()); err != nil {
			return err
		}
		if !more {
			return nil
		}
		off = end
	}
}

func (c *conn) handleQuery(payload []byte) error {
	q, err := wire.DecodeQuery(payload)
	if err != nil {
		return c.writeError(wire.CodeBadRequest, err.Error())
	}
	ctx, cancel := reqCtx(q.DeadlineMillis)
	defer cancel()
	items, err := c.sess.QueryContext(ctx, q.Src)
	if err != nil {
		return c.writeError(errCode(err), err.Error())
	}
	return c.writeItemsStream(0, toWireItems(items), int(q.ChunkItems))
}

func (c *conn) handlePrepare(payload []byte) error {
	p, err := wire.DecodePrepare(payload)
	if err != nil {
		return c.writeError(wire.CodeBadRequest, err.Error())
	}
	st, err := c.sess.Prepare(p.Src)
	if err != nil {
		return c.writeError(errCode(err), err.Error())
	}
	c.nextStmt++
	c.stmts[c.nextStmt] = st
	c.stmtsOpen.Add(1)
	obsStmtsOpen.Add(1)
	return c.w.WriteFrame(wire.TypePrepared, wire.Prepared{Stmt: c.nextStmt}.Encode())
}

func (c *conn) handleExecute(payload []byte) error {
	e, err := wire.DecodeExecute(payload)
	if err != nil {
		return c.writeError(wire.CodeBadRequest, err.Error())
	}
	st, ok := c.stmts[e.Stmt]
	if !ok {
		return c.writeError(wire.CodeUnknownHandle, fmt.Sprintf("unknown statement handle %d", e.Stmt))
	}
	ctx, cancel := reqCtx(e.DeadlineMillis)
	defer cancel()
	items, err := st.QueryContext(ctx)
	if err != nil {
		return c.writeError(errCode(err), err.Error())
	}
	if len(items) == 0 {
		return c.w.WriteFrame(wire.TypeExecuted, wire.Executed{Cursor: 0, Rows: 0}.Encode())
	}
	c.nextCursor++
	c.cursors[c.nextCursor] = &cursor{items: toWireItems(items)}
	c.cursorsOpen.Add(1)
	obsCursorsOpen.Add(1)
	return c.w.WriteFrame(wire.TypeExecuted, wire.Executed{Cursor: c.nextCursor, Rows: uint64(len(items))}.Encode())
}

func (c *conn) dropCursor(id uint64) {
	delete(c.cursors, id)
	c.cursorsOpen.Add(-1)
	obsCursorsOpen.Add(-1)
}

func (c *conn) handleFetch(payload []byte) error {
	f, err := wire.DecodeFetch(payload)
	if err != nil {
		return c.writeError(wire.CodeBadRequest, err.Error())
	}
	cur, ok := c.cursors[f.Cursor]
	if !ok {
		return c.writeError(wire.CodeUnknownHandle, fmt.Sprintf("unknown cursor handle %d", f.Cursor))
	}
	chunk := int(f.Max)
	if chunk <= 0 {
		chunk = c.s.opts.ChunkItems
	}
	end := cur.off + chunk
	if end > len(cur.items) {
		end = len(cur.items)
	}
	more := end < len(cur.items)
	msg := wire.Items{Cursor: f.Cursor, More: more, Items: cur.items[cur.off:end]}
	if err := c.w.WriteFrame(wire.TypeItems, msg.Encode()); err != nil {
		return err
	}
	if more {
		cur.off = end
	} else {
		c.dropCursor(f.Cursor)
	}
	return nil
}

func (c *conn) handleCloseCursor(payload []byte) error {
	cc, err := wire.DecodeCloseCursor(payload)
	if err != nil {
		return c.writeError(wire.CodeBadRequest, err.Error())
	}
	if _, ok := c.cursors[cc.Cursor]; !ok {
		return c.writeError(wire.CodeUnknownHandle, fmt.Sprintf("unknown cursor handle %d", cc.Cursor))
	}
	c.dropCursor(cc.Cursor)
	return c.w.WriteFrame(wire.TypeAck, nil)
}

func (c *conn) handleCloseStmt(payload []byte) error {
	cs, err := wire.DecodeCloseStmt(payload)
	if err != nil {
		return c.writeError(wire.CodeBadRequest, err.Error())
	}
	st, ok := c.stmts[cs.Stmt]
	if !ok {
		return c.writeError(wire.CodeUnknownHandle, fmt.Sprintf("unknown statement handle %d", cs.Stmt))
	}
	st.Close()
	delete(c.stmts, cs.Stmt)
	c.stmtsOpen.Add(-1)
	obsStmtsOpen.Add(-1)
	return c.w.WriteFrame(wire.TypeAck, nil)
}

func (c *conn) handleUpdate(payload []byte) error {
	u, err := wire.DecodeUpdate(payload)
	if err != nil {
		return c.writeError(wire.CodeBadRequest, err.Error())
	}
	res, err := c.s.db.Update(u.Src)
	if err != nil {
		return c.writeError(errCode(err), err.Error())
	}
	return c.w.WriteFrame(wire.TypeUpdated, wire.Updated{Tuples: uint64(res.Tuples), NodesTouched: uint64(res.NodesTouched)}.Encode())
}

func (c *conn) handleHealth() error {
	info := c.s.db.HealthInfo()
	msg := wire.HealthInfo{State: uint8(info.State), Cause: info.Cause, Degrades: info.Degrades, Heals: info.Heals}
	return c.w.WriteFrame(wire.TypeHealthInfo, msg.Encode())
}

func (c *conn) handleStats() error {
	st := c.s.Stats()
	msg := wire.StatsInfo{
		Connections: st.Connections,
		Open:        uint64(st.Open),
		Requests:    st.Requests,
		Responses:   st.Responses,
		Errors:      st.Errors,
		StmtsOpen:   uint64(st.StmtsOpen),
		CursorsOpen: uint64(st.CursorsOpen),
		Draining:    st.Draining,
	}
	return c.w.WriteFrame(wire.TypeStatsInfo, msg.Encode())
}
