// Package server implements mctserved's serving core: a TCP listener
// speaking the internal/wire protocol, one colorful.Session per connection,
// and a graceful drain that never drops an in-flight request it has read.
//
// Concurrency shape: one goroutine per connection, owned end to end — a
// connection's session, statement handles, and cursors are touched only by
// its handler goroutine, so the only shared state is the connection
// registry (a leaf mutex) and per-connection atomic counters. Shutdown
// closes the listener, wakes every blocked read via a past read deadline,
// lets each handler finish the request it already read, and waits for the
// handlers through the tracking WaitGroup.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"colorfulxml/colorful"
)

// Options tunes a Server. The zero value serves with defaults.
type Options struct {
	// Name is reported in the Welcome handshake and defaults to "mctserved".
	Name string
	// ChunkItems caps items per Items frame when the client does not ask
	// for a specific chunk size. Default 1024.
	ChunkItems int
	// DrainTimeout bounds Shutdown when its context has no deadline:
	// connections still busy after this long are closed hard. Default 10s.
	DrainTimeout time.Duration
	// HandshakeTimeout bounds how long a fresh connection may take to send
	// Hello. Default 10s.
	HandshakeTimeout time.Duration
	// Logf receives serving events (accepts, drains, protocol errors). Nil
	// disables logging.
	Logf func(format string, args ...any)
}

const (
	defaultChunkItems       = 1024
	defaultDrainTimeout     = 10 * time.Second
	defaultHandshakeTimeout = 10 * time.Second
)

// Server serves one colorful.DB over the wire protocol. Create with New,
// run with Serve, stop with Shutdown. The Server does not own the DB: the
// caller closes it after Shutdown returns.
type Server struct {
	db   *colorful.DB
	opts Options

	ln       net.Listener
	stopCh   chan struct{}
	stopOnce sync.Once
	draining atomic.Bool
	wg       sync.WaitGroup

	// mu guards conns. It is a leaf lock: nothing else is acquired while it
	// is held.
	mu    sync.Mutex
	conns map[*conn]struct{}

	accepted  atomic.Uint64
	requests  atomic.Uint64
	responses atomic.Uint64
	errorResp atomic.Uint64
}

// Stats is a point-in-time view of one Server, also served over the wire
// as StatsInfo.
type Stats struct {
	Connections uint64 // accepted since start
	Open        int    // currently open
	Requests    uint64 // post-handshake requests fully read
	Responses   uint64 // responses fully written for them
	Errors      uint64 // Error responses among those
	StmtsOpen   int
	CursorsOpen int
	Draining    bool
}

// New returns an unstarted server for db.
func New(db *colorful.DB, opts Options) *Server {
	if opts.Name == "" {
		opts.Name = "mctserved"
	}
	if opts.ChunkItems <= 0 {
		opts.ChunkItems = defaultChunkItems
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = defaultDrainTimeout
	}
	if opts.HandshakeTimeout <= 0 {
		opts.HandshakeTimeout = defaultHandshakeTimeout
	}
	return &Server{
		db:     db,
		opts:   opts,
		stopCh: make(chan struct{}),
		conns:  map[*conn]struct{}{},
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Addr returns the listen address once Serve has been called (useful with
// ":0").
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on ln until Shutdown. It returns nil after a
// drain (including every connection handler having exited), or the accept
// error that stopped it.
func (s *Server) Serve(ln net.Listener) error {
	s.ln = ln
	s.logf("serving on %s", ln.Addr())
	for {
		select {
		case <-s.stopCh:
			s.wg.Wait()
			return nil
		default:
		}
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				s.wg.Wait()
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.accepted.Add(1)
		obsConnsTotal.Inc()
		c := newConn(s, nc)
		if !s.register(c) {
			// Raced with Shutdown: refuse politely.
			nc.Close()
			continue
		}
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

func (s *Server) serveConn(c *conn) {
	defer s.wg.Done()
	defer s.unregister(c)
	obsConnsOpen.Add(1)
	defer obsConnsOpen.Add(-1)
	c.run()
}

// register adds c to the registry; it refuses when draining so Shutdown
// cannot miss a connection accepted concurrently with it.
func (s *Server) register(c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) unregister(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) snapshotConns() []*conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		out = append(out, c)
	}
	return out
}

// Shutdown drains the server: stop accepting, wake every blocked read, let
// each handler finish and acknowledge the request it is on, then wait for
// all handlers. Connections still busy when ctx expires (or after
// DrainTimeout if ctx has no deadline) are closed hard; Shutdown reports
// how many. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		close(s.stopCh)
		obsDrains.Inc()
	})
	if s.ln != nil {
		s.ln.Close()
	}
	for _, c := range s.snapshotConns() {
		c.wake()
	}
	deadline := time.Now().Add(s.opts.DrainTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	forced := 0
	for {
		open := len(s.snapshotConns())
		if open == 0 {
			break
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			for _, c := range s.snapshotConns() {
				c.nc.Close()
				forced++
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.wg.Wait()
	s.logf("drain complete (%d connections closed hard)", forced)
	if forced > 0 {
		return fmt.Errorf("server: drain timed out: %d connections closed hard", forced)
	}
	return nil
}

// Stats returns a point-in-time snapshot.
func (s *Server) Stats() Stats {
	st := Stats{
		Connections: s.accepted.Load(),
		Requests:    s.requests.Load(),
		Responses:   s.responses.Load(),
		Errors:      s.errorResp.Load(),
		Draining:    s.draining.Load(),
	}
	for _, c := range s.snapshotConns() {
		st.Open++
		st.StmtsOpen += int(c.stmtsOpen.Load())
		st.CursorsOpen += int(c.cursorsOpen.Load())
	}
	return st
}

// isDeadlineErr reports whether a read failed because of the drain wake-up
// (or any read deadline), as opposed to a peer disconnect.
func isDeadlineErr(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
