package server_test

// Subprocess end-to-end test: build the real mctserved binary, boot it
// against a datagen store on TCP, drive client load, SIGTERM it mid-load,
// and verify the graceful-drain contract from the outside — exit status 0
// and zero dropped in-flight queries (every request the server read was
// answered, confirmed against the obs dump it writes on exit).

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"colorfulxml/client"
)

// artifactDir returns where server logs and obs dumps should land: the CI
// artifact directory when MCTSERVED_E2E_ARTIFACTS is set (uploaded on
// failure), a test temp dir otherwise.
func artifactDir(t *testing.T) string {
	if dir := os.Getenv("MCTSERVED_E2E_ARTIFACTS"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

// buildServed compiles cmd/mctserved into a temp binary.
func buildServed(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mctserved")
	cmd := exec.Command("go", "build", "-o", bin, "colorfulxml/cmd/mctserved")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building mctserved: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	gomod := string(out)
	if i := len(gomod) - 1; i >= 0 && gomod[i] == '\n' {
		gomod = gomod[:i]
	}
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

// awaitAddrFile polls for the address file mctserved writes once listening.
func awaitAddrFile(t *testing.T, path string, proc *exec.Cmd) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		b, err := os.ReadFile(path)
		if err == nil && len(b) > 0 {
			return string(b)
		}
		if time.Now().After(deadline) {
			t.Fatalf("mctserved never wrote its address file %s", path)
		}
		if proc.ProcessState != nil {
			t.Fatalf("mctserved exited before listening: %v", proc.ProcessState)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestE2EGracefulShutdownUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e skipped in -short mode")
	}
	bin := buildServed(t)
	arts := artifactDir(t)
	addrFile := filepath.Join(t.TempDir(), "addr")
	obsDump := filepath.Join(arts, "e2e-obs.json")
	logFile := filepath.Join(arts, "e2e-server.log")

	logF, err := os.Create(logFile)
	if err != nil {
		t.Fatal(err)
	}
	defer logF.Close()

	proc := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-catalog-scale", "200",
		"-drain-timeout", "20s",
		"-obs-dump", obsDump,
	)
	proc.Stdout = logF
	proc.Stderr = logF
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- proc.Wait() }()
	defer proc.Process.Kill() //nolint:errcheck // cleanup if assertions bail early

	addr := awaitAddrFile(t, addrFile, proc)

	// IdlePingAfter is disabled so the only requests the server sees are the
	// handshake-free queries we count; pings would skew the zero-drop ledger.
	cdb, err := client.OpenOptions(addr, client.Options{
		PoolSize: 4, MaxRetries: -1, IdlePingAfter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()

	const clients = 4
	q := `document("db")/{red}descendant::item/{red}child::name`
	var (
		succeeded atomic.Int64
		stopped   atomic.Int64
		badErr    atomic.Value
		wg        sync.WaitGroup
	)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				_, err := cdb.Query(q)
				switch {
				case err == nil:
					succeeded.Add(1)
				case errors.Is(err, client.ErrDraining), errors.Is(err, client.ErrClosed):
					stopped.Add(1)
					return
				default:
					var ne net.Error
					if errors.As(err, &ne) {
						// Listener already closed: dial refused. Expected
						// shutdown noise, not a dropped request.
						stopped.Add(1)
						return
					}
					badErr.Store(fmt.Errorf("query %d: %w", i, err))
					return
				}
			}
		}()
	}

	// Let load flow, then deliver SIGTERM mid-flight.
	time.Sleep(300 * time.Millisecond)
	if succeeded.Load() == 0 {
		t.Log("warning: no query completed before SIGTERM; drain coverage is weak")
	}
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	wg.Wait()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("mctserved exited non-zero after SIGTERM: %v (log: %s)", err, logFile)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("mctserved did not exit within 30s of SIGTERM (log: %s)", logFile)
	}
	if v := badErr.Load(); v != nil {
		t.Fatalf("query dropped during drain: %v (log: %s)", v, logFile)
	}
	if succeeded.Load() == 0 {
		t.Fatal("no query succeeded; the load never reached the server")
	}

	// The obs dump is the server's own ledger: every request it read must
	// have been answered, and the drain must have been recorded.
	b, err := os.ReadFile(obsDump)
	if err != nil {
		t.Fatalf("mctserved wrote no obs dump: %v", err)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("obs dump is not valid JSON: %v", err)
	}
	reqs := snap.Counters["server_requests_total"]
	resps := snap.Counters["server_responses_total"]
	if reqs == 0 {
		t.Fatalf("obs dump shows no requests (dump: %s)", obsDump)
	}
	if reqs != resps {
		t.Fatalf("drain dropped requests: server read %d, answered %d (dump: %s)", reqs, resps, obsDump)
	}
	if snap.Counters["server_drains_total"] == 0 {
		t.Fatalf("obs dump shows no drain recorded (dump: %s)", obsDump)
	}

	// The server answered at least what this test observed succeeding.
	if resps < uint64(succeeded.Load()) {
		t.Fatalf("server answered %d requests but clients saw %d successes", resps, succeeded.Load())
	}
}
