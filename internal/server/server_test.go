package server_test

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"colorfulxml/client"
	"colorfulxml/colorful"
	"colorfulxml/internal/experiment"
	"colorfulxml/internal/server"
	"colorfulxml/internal/vfs"
	"colorfulxml/internal/wire"
)

// startServer boots srv on an ephemeral loopback port and tears it down
// with the test. It returns the server and its dialable address.
func startServer(t *testing.T, db *colorful.DB, opts server.Options) (*server.Server, string) {
	t.Helper()
	srv := server.New(db, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// startCatalog serves a fresh in-memory catalog store of the given scale.
func startCatalog(t *testing.T, scale int, opts server.Options) (*colorful.DB, *server.Server, string) {
	t.Helper()
	db, err := experiment.NewCatalogDB(scale)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv, addr := startServer(t, db, opts)
	return db, srv, addr
}

// TestServeSmoke drives every client-visible operation against a live
// server and cross-checks query results with the in-process engine.
func TestServeSmoke(t *testing.T) {
	db, srv, addr := startCatalog(t, 50, server.Options{})
	cdb, err := client.Open(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()

	ctx := context.Background()
	if err := cdb.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}

	for _, q := range experiment.CatalogQueries() {
		want, err := db.Query(q)
		if err != nil {
			t.Fatalf("in-process %q: %v", q, err)
		}
		got, err := cdb.Query(q)
		if err != nil {
			t.Fatalf("over wire %q: %v", q, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q: wire returned %d items, in-process %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i].Value != want[i].Value || got[i].Color != string(want[i].Color) {
				t.Fatalf("%q item %d: wire %+v, in-process {%s %q}", q, i, got[i], want[i].Color, want[i].Value)
			}
		}
	}

	// Prepared path returns the same rows as one-shot.
	q := experiment.CatalogQueries()[0]
	st, err := cdb.Prepare(q)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	defer st.Close()
	oneShot, err := cdb.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := st.Query()
	if err != nil {
		t.Fatalf("prepared query: %v", err)
	}
	if len(prepared) != len(oneShot) {
		t.Fatalf("prepared returned %d items, one-shot %d", len(prepared), len(oneShot))
	}

	// Update over the wire mutates the served store.
	res, err := cdb.Update(`
for $i in document("db")/{red}descendant::item[{red}child::name = "Item 7"]
update $i { insert <flag>1</flag> }`)
	if err != nil {
		t.Fatalf("update over wire: %v", err)
	}
	if res.Tuples == 0 {
		t.Fatal("update matched no tuples")
	}
	hits, err := cdb.Query(`document("db")/{red}descendant::flag`)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("inserted flag count = %d, want 1", len(hits))
	}

	h, err := cdb.Health(ctx)
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.State != colorful.Healthy {
		t.Fatalf("health state = %v, want Healthy", h.State)
	}

	stats, err := cdb.ServerStats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	// The Stats request itself is mid-flight when the snapshot is taken, so
	// it is counted as read but not yet answered.
	if stats.Requests == 0 || stats.Responses != stats.Requests-1 {
		t.Fatalf("server stats requests=%d responses=%d, want responses = requests-1", stats.Requests, stats.Responses)
	}
	if stats.Draining {
		t.Fatal("server reports draining mid-test")
	}
	_ = srv
}

// TestBigBatchSpansFrames forces a tiny server chunk size so a full scan
// streams across many Items frames, and checks nothing is lost or
// reordered at the seams.
func TestBigBatchSpansFrames(t *testing.T) {
	db, _, addr := startCatalog(t, 300, server.Options{ChunkItems: 7})
	cdb, err := client.Open(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()

	q := `document("db")/{red}descendant::item/{red}child::name`
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 100 {
		t.Fatalf("scan too small to span frames: %d items", len(want))
	}
	got, err := cdb.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("wire scan returned %d items, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Value != want[i].Value {
			t.Fatalf("item %d = %q, want %q (chunk seam reorder?)", i, got[i].Value, want[i].Value)
		}
	}

	// The prepared/Execute/Fetch path drains a server cursor in the same
	// tiny chunks.
	st, err := cdb.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fetched, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(fetched) != len(want) {
		t.Fatalf("cursor drain returned %d items, want %d", len(fetched), len(want))
	}
}

// TestOverloadIsTypedAndRetryable saturates the server's admission gate and
// checks ErrOverloaded survives the wire with its retryable classification.
func TestOverloadIsTypedAndRetryable(t *testing.T) {
	db, _, addr := startCatalog(t, 2000, server.Options{})
	db.SetMaxInflight(1)
	// Any queue wait at all times out: whenever two queries overlap, the
	// loser is rejected.
	db.SetAdmissionTimeout(time.Nanosecond)

	// Retries disabled so the typed error reaches the caller raw.
	cdb, err := client.OpenOptions(addr, client.Options{PoolSize: 8, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()

	// In-process hammers keep the single admission slot occupied, so a wire
	// query arriving at the gate must queue — and with a nanosecond budget,
	// queueing means rejection. Network latency alone cannot line up two
	// executions reliably; the hammers make the collision certain.
	q := `document("db")/{red}descendant::item/{red}child::name`
	stopHammer := make(chan struct{})
	var hammers sync.WaitGroup
	for g := 0; g < 3; g++ {
		hammers.Add(1)
		go func() {
			defer hammers.Done()
			for {
				select {
				case <-stopHammer:
					return
				default:
				}
				db.Query(q) //nolint:errcheck // occupancy only; rejections among hammers are fine
			}
		}()
	}
	for db.AdmissionStats().Inflight == 0 {
		time.Sleep(time.Millisecond)
	}

	var overloadErr error
	for attempt := 0; attempt < 100 && overloadErr == nil; attempt++ {
		if _, err := cdb.Query(q); err != nil {
			overloadErr = err
		}
	}
	close(stopHammer)
	hammers.Wait()
	if overloadErr == nil {
		t.Fatal("no query hit the admission gate: overload never crossed the wire")
	}
	if !errors.Is(overloadErr, colorful.ErrOverloaded) {
		t.Fatalf("wire error = %v, want ErrOverloaded", overloadErr)
	}
	if !colorful.IsRetryable(overloadErr) {
		t.Fatal("wire ErrOverloaded lost its retryable classification")
	}

	// Lifting the gate restores serial service.
	db.SetMaxInflight(0)
	if _, err := cdb.Query(q); err != nil {
		t.Fatalf("query after lifting the gate: %v", err)
	}
}

// TestDegradedReadOnlyOverWire degrades a durable store with an injected
// disk outage and checks a wire Update is refused with ErrReadOnly — typed,
// and NOT retryable.
func TestDegradedReadOnlyOverWire(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	ffs := vfs.NewFaultFS(vfs.OS, 42)
	db, err := colorful.OpenOptions(dir, colorful.Options{
		FS: ffs,
		Retry: &vfs.RetryPolicy{
			MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
			Budget: time.Second, Seed: 7, Sleep: func(time.Duration) {},
		},
		ProbeInterval: time.Hour, // probe effectively disabled
	}, "red", "green")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.AddElement(db.Document(), "movie", "red"); err != nil {
		t.Fatal(err)
	}

	_, addr := startServer(t, db, server.Options{})
	cdb, err := client.Open(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()

	// Healthy first: the same update applies over the wire.
	if _, err := cdb.Update(`
for $m in document("db")/{red}descendant::movie
update $m { insert <ok>1</ok> }`); err != nil {
		t.Fatalf("update on healthy store: %v", err)
	}

	// Disk outage: every durability operation fails hard.
	ffs.SetStanding(vfs.Permanent(vfs.ErrIO))
	_, err = cdb.Update(`
for $m in document("db")/{red}descendant::movie
update $m { insert <late>1</late> }`)
	if err == nil {
		t.Fatal("update acknowledged over the wire during a disk outage")
	}
	if !errors.Is(err, colorful.ErrReadOnly) {
		t.Fatalf("wire error = %v, want ErrReadOnly", err)
	}
	if colorful.IsRetryable(err) {
		t.Fatal("degraded-mode rejection must not be retryable over the wire")
	}

	// Reads keep serving, and Health reports the degraded state remotely.
	if _, err := cdb.Query(`document("db")/{red}descendant::movie`); err != nil {
		t.Fatalf("read during degraded mode: %v", err)
	}
	h, err := cdb.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.State != colorful.DegradedReadOnly {
		t.Fatalf("remote health = %v, want DegradedReadOnly", h.State)
	}
}

// TestDisconnectFreesHandles opens a statement and a half-drained cursor
// over raw wire frames, kills the socket without closing anything, and
// checks the server frees the session's handles and its registry slot.
func TestDisconnectFreesHandles(t *testing.T) {
	_, srv, addr := startCatalog(t, 300, server.Options{})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	w, r := wire.NewWriter(nc), wire.NewReader(nc)

	// ask sends one request frame and returns the (decoded-by-caller)
	// response, failing the test on any Error response.
	ask := func(typ wire.Type, payload []byte, want wire.Type) []byte {
		t.Helper()
		if err := w.WriteFrame(typ, payload); err != nil {
			t.Fatal(err)
		}
		rtyp, rp, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if rtyp == wire.TypeError {
			em, _ := wire.DecodeError(rp)
			t.Fatalf("%v request failed: %v %s", typ, em.Code, em.Msg)
		}
		if rtyp != want {
			t.Fatalf("%v response = %v, want %v", typ, rtyp, want)
		}
		return rp
	}

	ask(wire.TypeHello, wire.Hello{Proto: wire.ProtoVersion, Client: "abrupt"}.Encode(), wire.TypeWelcome)
	q := `document("db")/{red}descendant::item/{red}child::name`
	prepared, err := wire.DecodePrepared(ask(wire.TypePrepare, wire.Prepare{Src: q}.Encode(), wire.TypePrepared))
	if err != nil {
		t.Fatal(err)
	}
	executed, err := wire.DecodeExecuted(ask(wire.TypeExecute, wire.Execute{Stmt: prepared.Stmt}.Encode(), wire.TypeExecuted))
	if err != nil {
		t.Fatal(err)
	}
	if executed.Cursor == 0 || executed.Rows == 0 {
		t.Fatalf("execute returned cursor=%d rows=%d, want live cursor", executed.Cursor, executed.Rows)
	}
	// Fetch one small chunk so the cursor is mid-drain, then vanish.
	ask(wire.TypeFetch, wire.Fetch{Cursor: executed.Cursor, Max: 5}.Encode(), wire.TypeItems)

	st := srv.Stats()
	if st.StmtsOpen != 1 || st.CursorsOpen != 1 {
		t.Fatalf("before disconnect: stmts=%d cursors=%d, want 1/1", st.StmtsOpen, st.CursorsOpen)
	}
	nc.Close() // raw socket close: no CloseStmt, no CloseCursor

	deadline := time.Now().Add(10 * time.Second)
	for {
		st = srv.Stats()
		if st.Open == 0 && st.StmtsOpen == 0 && st.CursorsOpen == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never freed handles: open=%d stmts=%d cursors=%d", st.Open, st.StmtsOpen, st.CursorsOpen)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGracefulDrainZeroDrop runs client load, shuts the server down in the
// middle of it, and verifies the drain invariant: every request the server
// read got its response (client- and server-side counts agree), and no
// connection was closed hard.
func TestGracefulDrainZeroDrop(t *testing.T) {
	db, err := experiment.NewCatalogDB(200)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := server.New(db, server.Options{DrainTimeout: 10 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	cdb, err := client.OpenOptions(ln.Addr().String(), client.Options{PoolSize: 4, MaxRetries: -1, IdlePingAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()

	const clients = 4
	q := `document("db")/{red}descendant::item/{red}child::name`
	var (
		succeeded atomic.Int64
		drained   atomic.Int64
		badErr    atomic.Value
		wg        sync.WaitGroup
	)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, err := cdb.Query(q)
				switch {
				case err == nil:
					succeeded.Add(1)
				case errors.Is(err, client.ErrDraining):
					drained.Add(1)
					return
				default:
					// After the listener closes, fresh dials are refused;
					// that is expected shutdown noise, not a drop.
					var ne net.Error
					if errors.As(err, &ne) || errors.Is(err, client.ErrClosed) {
						drained.Add(1)
						return
					}
					badErr.Store(err)
					return
				}
			}
		}()
	}

	// Let the load get going, then drain mid-flight.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown forced connections closed: %v", err)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if v := badErr.Load(); v != nil {
		t.Fatalf("query dropped during drain: %v", v)
	}
	if succeeded.Load() == 0 {
		t.Fatal("no query succeeded before the drain")
	}

	st := srv.Stats()
	if st.Requests != st.Responses {
		t.Fatalf("drain dropped requests: read %d, answered %d", st.Requests, st.Responses)
	}
	if st.Open != 0 {
		t.Fatalf("connections still open after drain: %d", st.Open)
	}
}

// TestHandshakeRejectsBadClients speaks raw wire frames to check protocol
// policing: wrong first frame and wrong version both earn a typed Error.
func TestHandshakeRejectsBadClients(t *testing.T) {
	_, _, addr := startCatalog(t, 10, server.Options{})

	check := func(name string, typ wire.Type, payload []byte) {
		t.Helper()
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		nc.SetDeadline(time.Now().Add(5 * time.Second))
		w, r := wire.NewWriter(nc), wire.NewReader(nc)
		if err := w.WriteFrame(typ, payload); err != nil {
			t.Fatal(err)
		}
		rtyp, rp, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("%s: reading response: %v", name, err)
		}
		if rtyp != wire.TypeError {
			t.Fatalf("%s: response type = %v, want Error", name, rtyp)
		}
		em, err := wire.DecodeError(rp)
		if err != nil {
			t.Fatal(err)
		}
		if em.Code != wire.CodeProtocol {
			t.Fatalf("%s: code = %v, want CodeProtocol", name, em.Code)
		}
	}

	check("ping before hello", wire.TypePing, nil)
	check("future version", wire.TypeHello, wire.Hello{Proto: 99, Client: "time traveler"}.Encode())
}
