package server

import "colorfulxml/internal/obs"

// Server-level instruments. Counters aggregate across every Server in the
// process; per-server numbers are available through Server.Stats.
var (
	obsConnsTotal        = obs.NewCounter("server_connections_total")
	obsConnsOpen         = obs.NewGauge("server_connections_open")
	obsHandshakeFailures = obs.NewCounter("server_handshake_failures_total")
	obsRequests          = obs.NewCounter("server_requests_total")
	obsResponses         = obs.NewCounter("server_responses_total")
	obsErrorResponses    = obs.NewCounter("server_error_responses_total")
	obsStmtsOpen         = obs.NewGauge("server_stmts_open")
	obsCursorsOpen       = obs.NewGauge("server_cursors_open")
	obsDrains            = obs.NewCounter("server_drains_total")

	// Per-message-type handling latency (request fully read to response
	// fully written).
	obsQueryNanos   = obs.NewHistogram("server_query_nanos")
	obsPrepareNanos = obs.NewHistogram("server_prepare_nanos")
	obsExecuteNanos = obs.NewHistogram("server_execute_nanos")
	obsFetchNanos   = obs.NewHistogram("server_fetch_nanos")
	obsUpdateNanos  = obs.NewHistogram("server_update_nanos")
	obsPingNanos    = obs.NewHistogram("server_ping_nanos")
	obsHealthNanos  = obs.NewHistogram("server_health_nanos")
	obsStatsNanos   = obs.NewHistogram("server_stats_nanos")
)
