package core

import "sync"

// This file implements the logical change log that makes incremental
// maintenance of derived store snapshots possible. Every mutation of the
// database appends a Change describing its store-visible effect; the serving
// layer (colorful.DB) drains the log and replays it against a copy-on-write
// clone of the previous storage.Store snapshot instead of rebuilding from
// scratch. Changes with no incremental store operation (positional inserts,
// renames, whole-subtree arrivals) are recorded as ChangeComplex, telling
// the maintainer to fall back to a full load.
//
// Mutations of detached fragments are store-invisible and record nothing:
// the store materializes exactly the rooted colored trees, so a change only
// matters once it happens inside (or moves nodes into/out of) a rooted tree.

// ChangeKind classifies one logical change to the rooted colored trees.
type ChangeKind uint8

const (
	// ChangeContent: element Elem's direct text content became Content.
	ChangeContent ChangeKind = iota
	// ChangeInsertLeaf: element Elem (not previously stored) was attached
	// as the last child of Parent in Color, with no element children in
	// Color. Tag, Content and Attrs carry its state at attach time.
	ChangeInsertLeaf
	// ChangeAddColor: already-stored element Elem was attached as the last
	// child of Parent in Color (the next-color constructor's attach).
	ChangeAddColor
	// ChangeDeleteSubtree: element Elem's subtree in Color left the rooted
	// tree (delete, remove-color or detach).
	ChangeDeleteSubtree
	// ChangeAttrs: element Elem's attribute list became Attrs.
	ChangeAttrs
	// ChangeAddDatabaseColor: the database gained color Color.
	ChangeAddDatabaseColor
	// ChangeComplex: a structural change with no incremental counterpart;
	// the snapshot maintainer must rebuild.
	ChangeComplex
)

// Change is one entry of the logical change log. Parent is 0 when the
// parent is the document node (node IDs start at 1).
type Change struct {
	Kind    ChangeKind
	Elem    NodeID
	Parent  NodeID
	Color   Color
	Tag     string
	Content string
	Attrs   [][2]string
}

// maxChangeLog bounds the change log; once exceeded the log is dropped and
// DrainChanges reports overflow, forcing consumers to rebuild. This keeps
// databases whose log is never drained from accumulating memory.
const maxChangeLog = 1 << 14

type changeLog struct {
	mu       sync.Mutex
	entries  []Change
	overflow bool
	drains   uint64 // bumped by DrainChanges, invalidating outstanding marks
}

func (db *Database) record(ch Change) {
	db.clog.mu.Lock()
	if !db.clog.overflow {
		if len(db.clog.entries) >= maxChangeLog {
			db.clog.overflow = true
			db.clog.entries = nil
		} else {
			db.clog.entries = append(db.clog.entries, ch)
		}
	}
	db.clog.mu.Unlock()
}

// DrainChanges returns and clears the change log accumulated since the last
// drain (or since construction). overflow reports that the log was dropped
// because it grew past its bound; the drained prefix is then incomplete and
// consumers must treat the database as arbitrarily changed.
func (db *Database) DrainChanges() (changes []Change, overflow bool) {
	db.clog.mu.Lock()
	defer db.clog.mu.Unlock()
	changes, overflow = db.clog.entries, db.clog.overflow
	db.clog.entries, db.clog.overflow = nil, false
	db.clog.drains++
	return changes, overflow
}

// ChangeMark is a position in the change log, taken before a mutation so the
// mutation's own entries can be read back afterwards (see ChangesSince).
type ChangeMark struct {
	drains uint64
	n      int
}

// Mark returns the current change-log position. The caller must hold the
// database's writer lock across Mark, the mutation, and ChangesSince — a
// concurrent DrainChanges invalidates the mark.
func (db *Database) Mark() ChangeMark {
	db.clog.mu.Lock()
	defer db.clog.mu.Unlock()
	return ChangeMark{drains: db.clog.drains, n: len(db.clog.entries)}
}

// ChangesSince returns a copy of the entries recorded after the mark. ok is
// false when the mark is no longer valid: the log was drained or overflowed
// in between, so the caller cannot know the exact entry set and must treat
// the database as arbitrarily changed (the durable layer responds with a
// full checkpoint).
func (db *Database) ChangesSince(m ChangeMark) (changes []Change, ok bool) {
	db.clog.mu.Lock()
	defer db.clog.mu.Unlock()
	if db.clog.drains != m.drains || db.clog.overflow || m.n > len(db.clog.entries) {
		return nil, false
	}
	tail := db.clog.entries[m.n:]
	if len(tail) == 0 {
		return nil, true
	}
	out := make([]Change, len(tail))
	copy(out, tail)
	return out, true
}

// reachable reports whether n belongs to the rooted colored tree c (i.e. its
// parent chain in c ends at the document node). Detached fragments are not
// reachable and have no store representation.
func (db *Database) reachable(n *Node, c Color) bool {
	for cur := n; cur != nil; {
		if cur == db.doc {
			return true
		}
		l := cur.link(c)
		if l == nil {
			return false
		}
		cur = l.parent
	}
	return false
}

// reachableAny reports whether n (or its owner, for owned nodes) is part of
// any rooted colored tree.
func (db *Database) reachableAny(n *Node) bool {
	t := n
	if t.owner != nil {
		t = t.owner
	}
	for _, c := range t.Colors() {
		if db.reachable(t, c) {
			return true
		}
	}
	return false
}

// changeParent encodes a parent node for the log (0 = document).
func (db *Database) changeParent(parent *Node) NodeID {
	if parent == db.doc {
		return 0
	}
	return parent.id
}

// attrSnapshot captures an element's attributes as (name, value) pairs.
func attrSnapshot(elem *Node) [][2]string {
	if len(elem.attrs) == 0 {
		return nil
	}
	out := make([][2]string, len(elem.attrs))
	for i, a := range elem.attrs {
		out[i] = [2]string{a.name, a.value}
	}
	return out
}

// logAttach records the store-visible effect of attaching child under parent
// in color c. atEnd reports whether the child became the last child.
func (db *Database) logAttach(parent, child *Node, c Color, atEnd bool) {
	if child.kind != KindElement {
		return // comments and PIs are not materialized in the store
	}
	if !db.reachable(parent, c) {
		return // still a detached fragment; no store effect
	}
	if !atEnd {
		db.record(Change{Kind: ChangeComplex})
		return
	}
	// A child that brings element children of its own lands a whole subtree
	// at once; the incremental ops only insert leaves.
	for _, ch := range child.link(c).children {
		if ch.kind == KindElement {
			db.record(Change{Kind: ChangeComplex})
			return
		}
	}
	for _, oc := range child.Colors() {
		if oc != c && db.reachable(child, oc) {
			// Already stored under another color: this attach adds one
			// structural node.
			db.record(Change{Kind: ChangeAddColor, Elem: child.id,
				Parent: db.changeParent(parent), Color: c})
			return
		}
	}
	db.record(Change{Kind: ChangeInsertLeaf, Elem: child.id,
		Parent: db.changeParent(parent), Color: c,
		Tag: child.name, Content: Text(child), Attrs: attrSnapshot(child)})
}

// logContent records that elem's direct text content changed.
func (db *Database) logContent(elem *Node) {
	db.record(Change{Kind: ChangeContent, Elem: elem.id, Content: Text(elem)})
}

// logAttrs records that elem's attribute list changed.
func (db *Database) logAttrs(elem *Node) {
	db.record(Change{Kind: ChangeAttrs, Elem: elem.id, Attrs: attrSnapshot(elem)})
}
