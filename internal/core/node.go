// Package core implements the multi-colored trees (MCT) logical data model of
// "Colorful XML: One Hierarchy Isn't Enough" (SIGMOD 2004).
//
// An MCT database is a set of nodes N, a finite set of colors C, and one
// colored tree T_c per color c. Every colored tree is an ordered, rooted tree
// over a subset of N, rooted at the shared document node. A node may carry one
// or more colors and therefore participate in several hierarchies at once,
// while its content and attributes are stored exactly once.
//
// The package provides the seven XML node kinds, the color-aware node
// accessors of the paper's Section 3.2 (dm:parent, dm:children,
// dm:string-value, dm:typed-value, dm:colors), the first-color and next-color
// constructors of Section 3.3, per-color local document order, and validation
// of the MCT invariants of Definition 3.2.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Color identifies one hierarchy (one colored tree) of an MCT database.
type Color string

// NodeID is the unique, stable identity of a node within one Database. Node
// identity is never reused, and is preserved by path and query evaluation
// (MCXQuery enclosed expressions retain identities rather than copying).
type NodeID uint64

// Kind enumerates the seven node kinds of the XML data model.
type Kind uint8

// The seven node kinds.
const (
	KindDocument Kind = iota
	KindElement
	KindAttribute
	KindText
	KindNamespace
	KindPI
	KindComment
)

// String returns the XPath name of the node kind.
func (k Kind) String() string {
	switch k {
	case KindDocument:
		return "document"
	case KindElement:
		return "element"
	case KindAttribute:
		return "attribute"
	case KindText:
		return "text"
	case KindNamespace:
		return "namespace"
	case KindPI:
		return "processing-instruction"
	case KindComment:
		return "comment"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// colorLink records a node's structural relationships within one colored tree:
// its parent and its ordered children in that tree.
type colorLink struct {
	parent   *Node
	children []*Node
}

// Node is a single MCT node. A node belongs to at most one rooted colored tree
// per color (Definition 3.2). Its element content and attributes exist once,
// independent of how many colors the node has.
//
// Nodes are created through Database constructor methods and must not be
// shared across databases.
type Node struct {
	id    NodeID
	kind  Kind
	name  string // qualified name for element, attribute and PI nodes
	value string // value for attribute, text, comment and PI nodes
	typ   string // schema type annotation (xs:untyped if empty)
	db    *Database

	// owner is the element an attribute or namespace node belongs to, or the
	// parent element of a text node. Per Definition 3.2(iii) such nodes carry
	// all colors of their owner, with the owner as parent in each color.
	owner *Node

	attrs []*Node
	nss   []*Node

	links map[Color]*colorLink
}

// ID returns the node's unique identity within its database.
func (n *Node) ID() NodeID { return n.id }

// Kind returns the node kind.
func (n *Node) Kind() Kind { return n.kind }

// Name returns the qualified name of an element, attribute or PI node, and
// the empty string for other kinds (dm:node-name).
func (n *Node) Name() string { return n.name }

// Value returns the lexical value carried directly by an attribute, text,
// comment or PI node. For elements and documents it returns the empty string;
// use StringValue for the color-aware concatenated value.
func (n *Node) Value() string { return n.value }

// TypeName returns the schema type annotation (dm:type). Untyped nodes report
// "xs:untyped".
func (n *Node) TypeName() string {
	if n.typ == "" {
		return "xs:untyped"
	}
	return n.typ
}

// SetTypeName sets the schema type annotation.
func (n *Node) SetTypeName(t string) { n.typ = t }

// Database returns the database this node belongs to.
func (n *Node) Database() *Database { return n.db }

// Owner returns the element node an attribute, namespace or text node is
// associated with, or nil for other kinds.
func (n *Node) Owner() *Node {
	switch n.kind {
	case KindAttribute, KindNamespace, KindText:
		return n.owner
	default:
		return nil
	}
}

// Colors implements the dm:colors accessor: the set of colors of the node, in
// deterministic (sorted) order. Attribute, namespace and text nodes report
// exactly the colors of their owner element (Definition 3.2(iii)).
func (n *Node) Colors() []Color {
	if n.owner != nil {
		return n.owner.Colors()
	}
	out := make([]Color, 0, len(n.links))
	for c := range n.links {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasColor reports whether the node participates in the colored tree c.
func (n *Node) HasColor(c Color) bool {
	if n.owner != nil {
		return n.owner.HasColor(c)
	}
	_, ok := n.links[c]
	return ok
}

// Label renders the node's identifier label in the paper's Figure 2 notation:
// the upper-cased initials of the node's colors, in sorted order, followed by
// the zero-padded node number, e.g. "RG012" for a red+green node number 12.
func (n *Node) Label() string {
	var b strings.Builder
	for _, c := range n.Colors() {
		if len(c) > 0 {
			b.WriteString(strings.ToUpper(string(c[0])))
		}
	}
	fmt.Fprintf(&b, "%03d", n.id)
	return b.String()
}

// Attributes returns the attribute nodes of an element (dm:attributes). The
// result is shared storage; callers must not modify it.
func (n *Node) Attributes() []*Node { return n.attrs }

// Namespaces returns the namespace nodes of an element (dm:namespaces).
func (n *Node) Namespaces() []*Node { return n.nss }

// Attribute returns the attribute node with the given name, or nil.
func (n *Node) Attribute(name string) *Node {
	for _, a := range n.attrs {
		if a.name == name {
			return a
		}
	}
	return nil
}

// AttributeValue returns the value of the named attribute, or "" if absent.
func (n *Node) AttributeValue(name string) string {
	if a := n.Attribute(name); a != nil {
		return a.value
	}
	return ""
}

// link returns the colorLink for color c, or nil when the node does not have
// that color. Owned nodes (attributes, namespaces, text) resolve through their
// owner for color membership but keep their own parent semantics.
func (n *Node) link(c Color) *colorLink {
	return n.links[c]
}

// ensureLink returns the colorLink for c, creating it if absent.
func (n *Node) ensureLink(c Color) *colorLink {
	if n.links == nil {
		n.links = make(map[Color]*colorLink, 2)
	}
	l := n.links[c]
	if l == nil {
		l = &colorLink{}
		n.links[c] = l
	}
	return l
}

func (n *Node) String() string {
	switch n.kind {
	case KindDocument:
		return fmt.Sprintf("document#%d", n.id)
	case KindElement:
		return fmt.Sprintf("<%s>#%d", n.name, n.id)
	case KindAttribute:
		return fmt.Sprintf("@%s=%q#%d", n.name, n.value, n.id)
	case KindText:
		return fmt.Sprintf("text(%q)#%d", n.value, n.id)
	case KindComment:
		return fmt.Sprintf("comment(%q)#%d", n.value, n.id)
	case KindPI:
		return fmt.Sprintf("pi(%s,%q)#%d", n.name, n.value, n.id)
	default:
		return fmt.Sprintf("%s#%d", n.kind, n.id)
	}
}
