package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Database is an MCT database: a node set, a color set, and one colored tree
// per color, all rooted at a single shared document node (Definition 3.2).
//
// A Database is not safe for concurrent mutation; concurrent readers are safe
// while no mutation is in progress (callers such as colorful.DB enforce this
// with a reader/writer lock). Generation, the change log and the local-order
// cache are internally synchronized so that readers may consult them without
// extra coordination.
type Database struct {
	doc    *Node
	colors map[Color]bool
	nextID NodeID
	byID   map[NodeID]*Node

	// order caches per-color local document order; invalidated on mutation.
	// Guarded by orderMu: the cache is lazily filled on read paths, which
	// may run concurrently.
	orderMu sync.Mutex
	order   map[Color]map[NodeID]int

	gen uint64 // mutation generation (atomic), bumped on every structural change

	// clog accumulates the store-visible effects of mutations for
	// incremental snapshot maintenance (see changelog.go).
	clog changeLog
}

// NewDatabase creates an empty MCT database whose document node carries all
// the given colors. Further colors can be added later with AddDatabaseColor.
func NewDatabase(colors ...Color) *Database {
	db := &Database{
		colors: make(map[Color]bool, len(colors)),
		byID:   make(map[NodeID]*Node),
		order:  make(map[Color]map[NodeID]int),
	}
	db.doc = db.newNode(KindDocument)
	for _, c := range colors {
		db.AddDatabaseColor(c)
	}
	return db
}

// Document returns the shared document node, the root of every colored tree.
func (db *Database) Document() *Node { return db.doc }

// Colors returns the database's color set in sorted order.
func (db *Database) Colors() []Color {
	out := make([]Color, 0, len(db.colors))
	for c := range db.colors {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasColor reports whether c is one of the database's colors.
func (db *Database) HasColor(c Color) bool { return db.colors[c] }

// AddDatabaseColor introduces a new color: the document node becomes the root
// of a new, initially empty colored tree of that color.
func (db *Database) AddDatabaseColor(c Color) {
	if db.colors[c] {
		return
	}
	db.colors[c] = true
	db.doc.ensureLink(c)
	db.invalidate()
	db.record(Change{Kind: ChangeAddDatabaseColor, Color: c})
}

// NodeByID returns the node with the given identity, or nil.
func (db *Database) NodeByID(id NodeID) *Node { return db.byID[id] }

// NumNodes returns the total number of nodes of all kinds in the database.
func (db *Database) NumNodes() int { return len(db.byID) }

// Generation returns a counter that increases on every mutation of the
// database. Callers that derive secondary structures (such as a physical
// store loaded from the database) can cache them keyed on the generation and
// rebuild only when it changes. It is safe to call concurrently with
// mutations.
func (db *Database) Generation() uint64 { return atomic.LoadUint64(&db.gen) }

func (db *Database) newNode(kind Kind) *Node {
	db.nextID++
	n := &Node{id: db.nextID, kind: kind, db: db}
	db.byID[n.id] = n
	return n
}

// RestoreElement creates a detached, colorless element node with a fixed
// identity. It is the recovery constructor: rebuilding a database from a
// recovered physical store must preserve element identities, because the
// write-ahead log (and the serving layer's snapshot result mapping) address
// elements by NodeID. The id must be unused; colors are attached afterwards
// with AddColor/Append exactly as the store's structural nodes dictate.
func (db *Database) RestoreElement(id NodeID, name string) (*Node, error) {
	if id == 0 {
		return nil, fmt.Errorf("core: RestoreElement: zero id")
	}
	if _, taken := db.byID[id]; taken {
		return nil, fmt.Errorf("core: RestoreElement: id %d already in use", id)
	}
	n := &Node{id: id, kind: KindElement, name: name, db: db}
	db.byID[id] = n
	if id > db.nextID {
		db.nextID = id
	}
	db.invalidate()
	return n, nil
}

func (db *Database) invalidate() {
	atomic.AddUint64(&db.gen, 1)
	db.orderMu.Lock()
	for c := range db.order {
		delete(db.order, c)
	}
	db.orderMu.Unlock()
}

// --- First-color constructors (Section 3.3) ---------------------------------

// NewElement is the first-color element constructor: it creates a new element
// node with unique identity and the single color c. The node is initially
// detached; attach it with Append or InsertBefore.
func (db *Database) NewElement(name string, c Color) (*Node, error) {
	if err := db.checkColor(c); err != nil {
		return nil, err
	}
	n := db.newNode(KindElement)
	n.name = name
	n.ensureLink(c)
	db.invalidate()
	return n, nil
}

// MustElement is NewElement that panics on error, for literal construction in
// tests and examples.
func (db *Database) MustElement(name string, c Color) *Node {
	n, err := db.NewElement(name, c)
	if err != nil {
		panic(err)
	}
	return n
}

// NewComment creates a comment node with the single color c, detached.
func (db *Database) NewComment(value string, c Color) (*Node, error) {
	if err := db.checkColor(c); err != nil {
		return nil, err
	}
	n := db.newNode(KindComment)
	n.value = value
	n.ensureLink(c)
	db.invalidate()
	return n, nil
}

// NewPI creates a processing-instruction node with the single color c,
// detached.
func (db *Database) NewPI(target, value string, c Color) (*Node, error) {
	if err := db.checkColor(c); err != nil {
		return nil, err
	}
	n := db.newNode(KindPI)
	n.name = target
	n.value = value
	n.ensureLink(c)
	db.invalidate()
	return n, nil
}

// SetAttribute creates (or replaces the value of) an attribute node on elem.
// Attribute nodes carry all colors of their owner element automatically
// (Definition 3.2(iii)). It returns the attribute node.
func (db *Database) SetAttribute(elem *Node, name, value string) (*Node, error) {
	if elem == nil || elem.kind != KindElement {
		return nil, fmt.Errorf("core: SetAttribute on %v: %w", elem, ErrNotElement)
	}
	if a := elem.Attribute(name); a != nil {
		a.value = value
		db.invalidate()
		db.logAttrs(elem)
		return a, nil
	}
	a := db.newNode(KindAttribute)
	a.name = name
	a.value = value
	a.owner = elem
	elem.attrs = append(elem.attrs, a)
	db.invalidate()
	db.logAttrs(elem)
	return a, nil
}

// Rename changes the name of an element, attribute or PI node. Names of
// other kinds cannot be set.
func (db *Database) Rename(n *Node, name string) error {
	switch n.kind {
	case KindElement, KindAttribute:
		n.name = name
		db.invalidate()
		if db.reachableAny(n) {
			// Renames re-key the tag or attribute index; there is no
			// incremental store op for that.
			db.record(Change{Kind: ChangeComplex})
		}
		return nil
	case KindPI:
		n.name = name
		db.invalidate() // PIs are not materialized in the store
		return nil
	default:
		return fmt.Errorf("core: Rename on %v: %w", n, ErrNotElement)
	}
}

// RemoveAttribute removes the named attribute from elem, if present.
func (db *Database) RemoveAttribute(elem *Node, name string) {
	for i, a := range elem.attrs {
		if a.name == name {
			elem.attrs = append(elem.attrs[:i], elem.attrs[i+1:]...)
			delete(db.byID, a.id)
			db.invalidate()
			db.logAttrs(elem)
			return
		}
	}
}

// AppendText creates a text node owned by elem and appends it at the end of
// elem's children in every color elem has. Per Definition 3.2(iii), text
// nodes carry all the colors of their owner element.
func (db *Database) AppendText(elem *Node, value string) (*Node, error) {
	if elem == nil || elem.kind != KindElement {
		return nil, fmt.Errorf("core: AppendText on %v: %w", elem, ErrNotElement)
	}
	t := db.newNode(KindText)
	t.value = value
	t.owner = elem
	for c := range elem.links {
		l := elem.links[c]
		l.children = append(l.children, t)
	}
	db.invalidate()
	db.logContent(elem)
	return t, nil
}

// --- Next-color constructor (Section 3.3) -----------------------------------

// AddColor is the next-color constructor: it adds color c to an existing
// element, comment or PI node, making the node available for attachment in
// the colored tree T_c. The node's text children are carried into the new
// color automatically (they must have all their owner's colors); element
// children are not, since per-color edges are independently specified.
func (db *Database) AddColor(n *Node, c Color) error {
	if err := db.checkColor(c); err != nil {
		return err
	}
	switch n.kind {
	case KindElement, KindComment, KindPI, KindDocument:
	default:
		return fmt.Errorf("core: AddColor on %v: %w", n, ErrOwnedNode)
	}
	if n.HasColor(c) {
		return fmt.Errorf("core: AddColor(%v, %q): %w", n, c, ErrAlreadyColored)
	}
	l := n.ensureLink(c)
	// Carry text children into the new color, in first-color order.
	if n.kind == KindElement {
		for _, child := range n.textChildren() {
			l.children = append(l.children, child)
		}
	}
	db.invalidate()
	return nil
}

// textChildren returns n's owned text children in the order of n's first
// (sorted-lowest) color, or any color if ordering is irrelevant.
func (n *Node) textChildren() []*Node {
	var out []*Node
	seen := map[NodeID]bool{}
	for _, c := range n.Colors() {
		for _, ch := range n.links[c].children {
			if ch.kind == KindText && !seen[ch.id] {
				seen[ch.id] = true
				out = append(out, ch)
			}
		}
	}
	return out
}

// RemoveColor removes color c from node n, detaching it (and recursively its
// subtree edges) from the colored tree T_c. The node must have at least one
// other color remaining, otherwise it becomes garbage; use Delete for that.
func (db *Database) RemoveColor(n *Node, c Color) error {
	l := n.link(c)
	if l == nil {
		return fmt.Errorf("core: RemoveColor(%v, %q): %w", n, c, ErrColorIncompatible)
	}
	if n.kind == KindDocument {
		return fmt.Errorf("core: cannot remove color from the document node")
	}
	wasReachable := n.kind == KindElement && db.reachable(n, c)
	// Detach from parent in c.
	if l.parent != nil {
		db.detach(n, c)
	}
	// Children in c lose their parent edge (they stay colored c, becoming
	// dangling; Validate will flag them — callers normally re-attach or
	// recursively remove).
	for _, ch := range l.children {
		if cl := ch.link(c); cl != nil {
			cl.parent = nil
		}
	}
	delete(n.links, c)
	db.invalidate()
	if wasReachable {
		// The store drops the whole stored subtree of n in c; descendants
		// that kept color c are now detached fragments, which the store
		// does not materialize either, so the effects agree.
		db.record(Change{Kind: ChangeDeleteSubtree, Elem: n.id, Color: c})
	}
	return nil
}

// --- Tree mutation -----------------------------------------------------------

// Append attaches child as the last child of parent in the colored tree c.
// Both nodes must have color c; the child must not already have a parent in
// c, and the attachment must not create a cycle.
func (db *Database) Append(parent, child *Node, c Color) error {
	return db.insert(parent, child, c, -1)
}

// InsertBefore attaches child into parent's children in color c, immediately
// before the existing child ref. If ref is nil it behaves like Append.
func (db *Database) InsertBefore(parent, child, ref *Node, c Color) error {
	if ref == nil {
		return db.insert(parent, child, c, -1)
	}
	l := parent.link(c)
	if l == nil {
		return fmt.Errorf("core: InsertBefore: parent %v: %w", parent, ErrColorIncompatible)
	}
	for i, ch := range l.children {
		if ch == ref {
			return db.insert(parent, child, c, i)
		}
	}
	return fmt.Errorf("core: InsertBefore: %v is not a child of %v in color %q", ref, parent, c)
}

func (db *Database) insert(parent, child *Node, c Color, at int) error {
	if parent == nil || child == nil {
		return fmt.Errorf("core: insert: nil node")
	}
	if parent.kind != KindElement && parent.kind != KindDocument {
		return fmt.Errorf("core: insert under %v: %w", parent, ErrNotElement)
	}
	pl := parent.link(c)
	if pl == nil {
		return fmt.Errorf("core: insert: parent %v lacks color %q: %w", parent, c, ErrColorIncompatible)
	}
	switch child.kind {
	case KindElement, KindComment, KindPI:
	case KindText:
		return fmt.Errorf("core: insert text node: use AppendText (text nodes are owned): %w", ErrOwnedNode)
	default:
		return fmt.Errorf("core: cannot attach %v as a child", child)
	}
	cl := child.link(c)
	if cl == nil {
		return fmt.Errorf("core: insert: child %v lacks color %q: %w", child, c, ErrColorIncompatible)
	}
	if cl.parent != nil {
		return fmt.Errorf("core: insert: %v already has a parent in color %q: %w", child, c, ErrAlreadyAttached)
	}
	// Cycle check: parent must not be a descendant of child in c.
	for a := parent; a != nil; {
		if a == child {
			return fmt.Errorf("core: insert %v under %v: %w", child, parent, ErrCycle)
		}
		al := a.link(c)
		if al == nil {
			break
		}
		a = al.parent
	}
	atEnd := at < 0 || at >= len(pl.children)
	if atEnd {
		pl.children = append(pl.children, child)
	} else {
		pl.children = append(pl.children, nil)
		copy(pl.children[at+1:], pl.children[at:])
		pl.children[at] = child
	}
	cl.parent = parent
	db.invalidate()
	db.logAttach(parent, child, c, atEnd)
	return nil
}

// detach removes child from its parent's child list in color c.
func (db *Database) detach(child *Node, c Color) {
	cl := child.link(c)
	if cl == nil || cl.parent == nil {
		return
	}
	pl := cl.parent.link(c)
	if pl != nil {
		for i, ch := range pl.children {
			if ch == child {
				pl.children = append(pl.children[:i], pl.children[i+1:]...)
				break
			}
		}
	}
	cl.parent = nil
	db.invalidate()
}

// Detach removes child from its parent in color c, leaving the child (and its
// subtree in c) as a detached colored fragment.
func (db *Database) Detach(child *Node, c Color) error {
	cl := child.link(c)
	if cl == nil {
		return fmt.Errorf("core: Detach(%v, %q): %w", child, c, ErrColorIncompatible)
	}
	if cl.parent == nil {
		return fmt.Errorf("core: Detach(%v, %q): %w", child, c, ErrNotAttached)
	}
	wasReachable := child.kind == KindElement && db.reachable(child, c)
	db.detach(child, c)
	if wasReachable {
		db.record(Change{Kind: ChangeDeleteSubtree, Elem: child.id, Color: c})
	}
	return nil
}

// Delete removes a node from the database entirely: it is detached from every
// colored tree, its subtree edges in each color are severed (children become
// detached fragments in that color), and owned attribute and text nodes are
// deleted with it.
func (db *Database) Delete(n *Node) error {
	if n == db.doc {
		return fmt.Errorf("core: cannot delete the document node")
	}
	switch n.kind {
	case KindAttribute:
		if n.owner != nil {
			db.RemoveAttribute(n.owner, n.name)
		}
		return nil
	case KindText:
		if n.owner != nil {
			for _, c := range n.owner.Colors() {
				l := n.owner.link(c)
				for i, ch := range l.children {
					if ch == n {
						l.children = append(l.children[:i], l.children[i+1:]...)
						break
					}
				}
			}
		}
		delete(db.byID, n.id)
		db.invalidate()
		if n.owner != nil {
			db.logContent(n.owner)
		}
		return nil
	}
	var storedIn []Color
	if n.kind == KindElement {
		for _, c := range n.Colors() {
			if db.reachable(n, c) {
				storedIn = append(storedIn, c)
			}
		}
	}
	for _, c := range n.Colors() {
		l := n.link(c)
		if l.parent != nil {
			db.detach(n, c)
		}
		for _, ch := range l.children {
			if ch.kind == KindText {
				continue // owned; removed below
			}
			if cl := ch.link(c); cl != nil {
				cl.parent = nil
			}
		}
	}
	for _, a := range n.attrs {
		delete(db.byID, a.id)
	}
	for _, t := range n.textChildren() {
		delete(db.byID, t.id)
	}
	n.attrs = nil
	delete(db.byID, n.id)
	db.invalidate()
	for _, c := range storedIn {
		db.record(Change{Kind: ChangeDeleteSubtree, Elem: n.id, Color: c})
	}
	return nil
}

// DeleteSubtree deletes n and, recursively, every descendant of n in color c
// that has no remaining color after the edges in c are removed. Descendants
// that carry other colors survive with those colors.
func (db *Database) DeleteSubtree(n *Node, c Color) error {
	l := n.link(c)
	if l == nil {
		return fmt.Errorf("core: DeleteSubtree(%v, %q): %w", n, c, ErrColorIncompatible)
	}
	children := append([]*Node(nil), l.children...)
	for _, ch := range children {
		if ch.kind == KindText {
			continue
		}
		if err := db.DeleteSubtree(ch, c); err != nil {
			return err
		}
	}
	if len(n.Colors()) == 1 {
		return db.Delete(n)
	}
	return db.RemoveColor(n, c)
}

func (db *Database) checkColor(c Color) error {
	if c == "" {
		return fmt.Errorf("core: empty color: %w", ErrUnknownColor)
	}
	if !db.colors[c] {
		return fmt.Errorf("core: color %q not in database: %w", c, ErrUnknownColor)
	}
	return nil
}
