package core

import "fmt"

// This file provides convenience construction helpers layered over the
// first-color/next-color constructors and tree mutators. They are what data
// generators, loaders and examples use to assemble MCT databases tersely.

// AddElement creates a new element with first color c and appends it under
// parent in that color.
func (db *Database) AddElement(parent *Node, name string, c Color) (*Node, error) {
	n, err := db.NewElement(name, c)
	if err != nil {
		return nil, err
	}
	if err := db.Append(parent, n, c); err != nil {
		return nil, err
	}
	return n, nil
}

// AddElementText creates a new element with first color c, appends it under
// parent, and gives it a single text child with the given value.
func (db *Database) AddElementText(parent *Node, name string, c Color, text string) (*Node, error) {
	n, err := db.AddElement(parent, name, c)
	if err != nil {
		return nil, err
	}
	if _, err := db.AppendText(n, text); err != nil {
		return nil, err
	}
	return n, nil
}

// Adopt applies the next-color constructor to n for color c (if n does not
// already have c) and appends it under parent in c. It is the idiom for
// giving an existing node a second hierarchy: e.g. attaching a movie node,
// already red under its genre, as green under an award year.
func (db *Database) Adopt(parent, n *Node, c Color) error {
	if !n.HasColor(c) {
		if err := db.AddColor(n, c); err != nil {
			return err
		}
	}
	return db.Append(parent, n, c)
}

// SetText replaces the text content of elem: all existing text children are
// removed (in every color) and a single new text child with the given value
// is appended.
func (db *Database) SetText(elem *Node, value string) error {
	if elem == nil || elem.kind != KindElement {
		return fmt.Errorf("core: SetText on %v: %w", elem, ErrNotElement)
	}
	for _, t := range elem.textChildren() {
		if err := db.Delete(t); err != nil {
			return err
		}
	}
	_, err := db.AppendText(elem, value)
	return err
}

// Text returns the concatenated text-child content of elem (not recursing
// into subelements), which is the common "leaf element value" accessor. It is
// color independent because text nodes carry all their owner's colors.
func Text(elem *Node) string {
	if elem == nil {
		return ""
	}
	colors := elem.Colors()
	if len(colors) == 0 {
		return ""
	}
	s := ""
	for _, ch := range Children(elem, colors[0]) {
		if ch.kind == KindText {
			s += ch.value
		}
	}
	return s
}

// CopySubtree implements the createCopy semantics for a single node within
// one colored tree: it returns a fresh, detached deep copy (new identities)
// of n and its entire subtree in color c. Attributes and text content are
// copied; colors other than c are not.
func (db *Database) CopySubtree(n *Node, c Color) (*Node, error) {
	if n == nil {
		return nil, fmt.Errorf("core: CopySubtree of nil node")
	}
	if !n.HasColor(c) {
		return nil, fmt.Errorf("core: CopySubtree(%v, %q): %w", n, c, ErrColorIncompatible)
	}
	switch n.kind {
	case KindElement:
		cp, err := db.NewElement(n.name, c)
		if err != nil {
			return nil, err
		}
		cp.typ = n.typ
		for _, a := range n.attrs {
			if _, err := db.SetAttribute(cp, a.name, a.value); err != nil {
				return nil, err
			}
		}
		for _, ch := range Children(n, c) {
			if ch.kind == KindText {
				if _, err := db.AppendText(cp, ch.value); err != nil {
					return nil, err
				}
				continue
			}
			chCopy, err := db.CopySubtree(ch, c)
			if err != nil {
				return nil, err
			}
			if err := db.Append(cp, chCopy, c); err != nil {
				return nil, err
			}
		}
		return cp, nil
	case KindComment:
		return db.NewComment(n.value, c)
	case KindPI:
		return db.NewPI(n.name, n.value, c)
	default:
		return nil, fmt.Errorf("core: CopySubtree of %v unsupported", n)
	}
}

// Stats summarizes the composition of a database, used by the Table 1 storage
// experiment and by tests.
type Stats struct {
	Elements   int // element nodes (counted once, regardless of color count)
	Attributes int
	TextNodes  int
	Comments   int
	PIs        int
	// StructuralNodes counts one per (element, color) pair: the number of
	// structural records a Timber-style store materializes (Figure 10).
	StructuralNodes int
	// MultiColored counts elements with two or more colors.
	MultiColored int
}

// ComputeStats scans the database and reports its composition.
func (db *Database) ComputeStats() Stats {
	var s Stats
	for _, n := range db.byID {
		switch n.kind {
		case KindElement:
			s.Elements++
			nc := len(n.links)
			s.StructuralNodes += nc
			if nc > 1 {
				s.MultiColored++
			}
		case KindAttribute:
			s.Attributes++
		case KindText:
			s.TextNodes++
		case KindComment:
			s.Comments++
		case KindPI:
			s.PIs++
		}
	}
	return s
}
