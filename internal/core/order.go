package core

import "sort"

// There is no global document order in an MCT database (Section 3.1): each
// colored tree defines its own local order, obtained by a pre-order,
// left-to-right traversal of the colored tree. This file implements local
// order computation, comparison, and order-preserving sequence utilities.

// orderIndex returns (building and caching if needed) the map from node ID to
// pre-order position in the colored tree c rooted at the document node.
// Attribute nodes order immediately after their owner element.
//
// The cache is guarded by orderMu because order lookups happen on read paths
// that may run from several goroutines at once; a cached index map itself is
// immutable once published (invalidation drops it rather than clearing it).
func (db *Database) orderIndex(c Color) map[NodeID]int {
	db.orderMu.Lock()
	defer db.orderMu.Unlock()
	if idx, ok := db.order[c]; ok {
		return idx
	}
	idx := make(map[NodeID]int)
	pos := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		idx[n.id] = pos
		pos++
		for _, a := range n.attrs {
			idx[a.id] = pos
			pos++
		}
		for _, ch := range Children(n, c) {
			walk(ch)
		}
	}
	if db.colors[c] {
		walk(db.doc)
	}
	db.order[c] = idx
	return idx
}

// LocalOrder returns the pre-order position of n in the colored tree c rooted
// at the document node, and ok=false when n is not part of that rooted tree
// (detached fragments have no position).
func (db *Database) LocalOrder(n *Node, c Color) (int, bool) {
	p, ok := db.orderIndex(c)[n.id]
	return p, ok
}

// CompareLocal orders two nodes by their local order in color c. Nodes not in
// the rooted tree sort after all nodes that are, by node ID for determinism.
func (db *Database) CompareLocal(a, b *Node, c Color) int {
	idx := db.orderIndex(c)
	pa, oka := idx[a.id]
	pb, okb := idx[b.id]
	switch {
	case oka && okb:
		return pa - pb
	case oka:
		return -1
	case okb:
		return 1
	default:
		return int(a.id) - int(b.id)
	}
}

// SortLocal sorts nodes in place by local order in color c.
func (db *Database) SortLocal(nodes []*Node, c Color) {
	sort.SliceStable(nodes, func(i, j int) bool {
		return db.CompareLocal(nodes[i], nodes[j], c) < 0
	})
}

// TreeNodes returns every node of the rooted colored tree c (document,
// elements, text, comments, PIs; attributes excluded) in local order.
func (db *Database) TreeNodes(c Color) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, ch := range Children(n, c) {
			walk(ch)
		}
	}
	if db.colors[c] {
		walk(db.doc)
	}
	return out
}

// Dedup returns nodes with duplicate identities removed, preserving the first
// occurrence of each.
func Dedup(nodes []*Node) []*Node {
	seen := make(map[NodeID]bool, len(nodes))
	out := nodes[:0:0]
	for _, n := range nodes {
		if !seen[n.id] {
			seen[n.id] = true
			out = append(out, n)
		}
	}
	return out
}
