package core_test

import (
	"errors"
	"strings"
	"testing"

	"colorfulxml/internal/core"
)

const (
	red   = core.Color("red")
	green = core.Color("green")
	blue  = core.Color("blue")
)

// buildMovieDB constructs a miniature version of the paper's Figure 2 movie
// database: a red movie-genre hierarchy, a green movie-award hierarchy and a
// blue actor hierarchy, with movie and movie-role nodes participating in two
// hierarchies each.
func buildMovieDB(t *testing.T) (*core.Database, map[string]*core.Node) {
	t.Helper()
	db := core.NewDatabase(red, green, blue)
	doc := db.Document()
	ns := map[string]*core.Node{}
	mk := func(key string, parent *core.Node, name string, c core.Color, text string) *core.Node {
		t.Helper()
		var n *core.Node
		var err error
		if text == "" {
			n, err = db.AddElement(parent, name, c)
		} else {
			n, err = db.AddElementText(parent, name, c, text)
		}
		if err != nil {
			t.Fatalf("building %s: %v", key, err)
		}
		ns[key] = n
		return n
	}

	// Red: movie-genre hierarchy.
	genres := mk("genres", doc, "movie-genres", red, "")
	comedy := mk("comedy", genres, "movie-genre", red, "")
	mk("comedy-name", comedy, "name", red, "Comedy")
	slapstick := mk("slapstick", comedy, "movie-genre", red, "")
	mk("slapstick-name", slapstick, "name", red, "Slapstick")
	drama := mk("drama", genres, "movie-genre", red, "")
	mk("drama-name", drama, "name", red, "Drama")

	// Movies are red children of their genre.
	eve := mk("eve", comedy, "movie", red, "")
	mk("eve-name", eve, "name", red, "All About Eve")
	duck := mk("duck", slapstick, "movie", red, "")
	mk("duck-name", duck, "name", red, "Duck Soup")

	// Green: Oscar movie-award temporal hierarchy.
	awards := mk("awards", doc, "movie-awards", green, "")
	oscar := mk("oscar", awards, "movie-award", green, "")
	mk("oscar-name", oscar, "name", green, "Oscar Best Movie")
	y1950 := mk("y1950", oscar, "year", green, "")
	mk("y1950-name", y1950, "name", green, "1950")

	// "All About Eve" is Oscar nominated: movie becomes green too.
	if err := db.Adopt(ns["y1950"], eve, green); err != nil {
		t.Fatalf("adopt eve into green: %v", err)
	}
	mk("eve-votes", eve, "votes", green, "14")

	// Blue: actor hierarchy, with movie-role nodes red+blue.
	actors := mk("actors", doc, "actors", blue, "")
	bette := mk("bette", actors, "actor", blue, "")
	mk("bette-name", bette, "name", blue, "Bette Davis")
	role := mk("role", eve, "movie-role", red, "")
	mk("role-name", role, "name", red, "Margo Channing")
	if err := db.Adopt(bette, role, blue); err != nil {
		t.Fatalf("adopt role into blue: %v", err)
	}

	if err := db.Validate(); err != nil {
		t.Fatalf("fixture should validate: %v", err)
	}
	return db, ns
}

func TestDatabaseColors(t *testing.T) {
	db := core.NewDatabase(red, green)
	got := db.Colors()
	if len(got) != 2 || got[0] != green || got[1] != red {
		t.Fatalf("Colors() = %v, want [green red]", got)
	}
	if !db.HasColor(red) || db.HasColor(blue) {
		t.Fatalf("HasColor wrong: red=%v blue=%v", db.HasColor(red), db.HasColor(blue))
	}
	db.AddDatabaseColor(blue)
	if !db.HasColor(blue) {
		t.Fatal("AddDatabaseColor(blue) did not register")
	}
	if !db.Document().HasColor(blue) {
		t.Fatal("document node must carry every database color")
	}
}

func TestNewElementUnknownColor(t *testing.T) {
	db := core.NewDatabase(red)
	if _, err := db.NewElement("x", "purple"); !errors.Is(err, core.ErrUnknownColor) {
		t.Fatalf("want ErrUnknownColor, got %v", err)
	}
	if _, err := db.NewElement("x", ""); !errors.Is(err, core.ErrUnknownColor) {
		t.Fatalf("empty color: want ErrUnknownColor, got %v", err)
	}
}

func TestMultiColorMembership(t *testing.T) {
	db, ns := buildMovieDB(t)
	eve := ns["eve"]
	if !eve.HasColor(red) || !eve.HasColor(green) || eve.HasColor(blue) {
		t.Fatalf("eve colors = %v, want [green red]", eve.Colors())
	}
	if got := eve.Colors(); len(got) != 2 || got[0] != green || got[1] != red {
		t.Fatalf("Colors() = %v", got)
	}
	// Parent differs per color (the paper's RG012 example).
	if p := core.Parent(eve, red); p != ns["comedy"] {
		t.Fatalf("red parent = %v, want comedy", p)
	}
	if p := core.Parent(eve, green); p != ns["y1950"] {
		t.Fatalf("green parent = %v, want y1950", p)
	}
	if p := core.Parent(eve, blue); p != nil {
		t.Fatalf("blue parent = %v, want nil (color incompatible)", p)
	}
	_ = db
}

func TestAccessorColorCompatibility(t *testing.T) {
	_, ns := buildMovieDB(t)
	eve := ns["eve"]
	if ch := core.Children(eve, blue); ch != nil {
		t.Fatalf("Children in incompatible color = %v, want nil", ch)
	}
	if _, ok := core.StringValue(eve, blue); ok {
		t.Fatal("StringValue in incompatible color should report ok=false")
	}
	if _, ok := core.TypedValue(eve, blue); ok {
		t.Fatal("TypedValue in incompatible color should report ok=false")
	}
}

func TestStringValuePerColor(t *testing.T) {
	_, ns := buildMovieDB(t)
	eve := ns["eve"]
	// Red subtree of eve: name + movie-role/name. Green subtree: name + votes.
	rv, ok := core.StringValue(eve, red)
	if !ok {
		t.Fatal("red string value should be ok")
	}
	if !strings.Contains(rv, "All About Eve") || !strings.Contains(rv, "Margo Channing") {
		t.Fatalf("red string-value = %q", rv)
	}
	if strings.Contains(rv, "14") {
		t.Fatalf("red string-value should not include green-only votes content: %q", rv)
	}
	gv, _ := core.StringValue(eve, green)
	if !strings.Contains(gv, "14") || strings.Contains(gv, "Margo") {
		t.Fatalf("green string-value = %q", gv)
	}
}

func TestTypedValue(t *testing.T) {
	_, ns := buildMovieDB(t)
	v, ok := core.TypedValue(ns["eve-votes"], green)
	if !ok {
		t.Fatal("votes should be green-compatible")
	}
	if v != int64(14) {
		t.Fatalf("typed value = %#v, want int64(14)", v)
	}
}

func TestAtomize(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{"42", int64(42)},
		{" -7 ", int64(-7)},
		{"3.5", 3.5},
		{"1e3", 1000.0},
		{"abc", "abc"},
		{"", ""},
		{"12abc", "12abc"},
	}
	for _, c := range cases {
		if got := core.Atomize(c.in); got != c.want {
			t.Errorf("Atomize(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestAttributesCarryOwnerColors(t *testing.T) {
	db, ns := buildMovieDB(t)
	eve := ns["eve"]
	a, err := db.SetAttribute(eve, "id", "m1")
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Colors(); len(got) != 2 {
		t.Fatalf("attribute colors = %v, want owner's two colors", got)
	}
	if p := core.Parent(a, red); p != eve {
		t.Fatalf("attr red parent = %v", p)
	}
	if p := core.Parent(a, green); p != eve {
		t.Fatalf("attr green parent = %v", p)
	}
	if p := core.Parent(a, blue); p != nil {
		t.Fatalf("attr blue parent = %v, want nil", p)
	}
	if eve.AttributeValue("id") != "m1" {
		t.Fatalf("AttributeValue = %q", eve.AttributeValue("id"))
	}
	// Replacing keeps identity.
	a2, _ := db.SetAttribute(eve, "id", "m2")
	if a2 != a {
		t.Fatal("SetAttribute with existing name must update in place")
	}
	if eve.AttributeValue("id") != "m2" {
		t.Fatal("attribute value not updated")
	}
}

func TestTextNodesCarryOwnerColors(t *testing.T) {
	db, ns := buildMovieDB(t)
	// eve-name was created red-only (under eve before eve became green)? No:
	// AppendText adds to every color the element has at that time, and
	// AddColor carries text children into new colors. Verify the carry.
	name := ns["eve-name"] // red element created before eve turned green
	if name.HasColor(green) {
		t.Fatal("eve-name element itself is red-only (element colors are independent)")
	}
	// Now give it green and check its text followed.
	if err := db.AddColor(name, green); err != nil {
		t.Fatal(err)
	}
	if got, ok := core.StringValue(name, green); !ok || got != "All About Eve" {
		t.Fatalf("green string-value after AddColor = %q, %v", got, ok)
	}
}

func TestAddColorErrors(t *testing.T) {
	db, ns := buildMovieDB(t)
	if err := db.AddColor(ns["eve"], red); !errors.Is(err, core.ErrAlreadyColored) {
		t.Fatalf("want ErrAlreadyColored, got %v", err)
	}
	if err := db.AddColor(ns["eve"], "purple"); !errors.Is(err, core.ErrUnknownColor) {
		t.Fatalf("want ErrUnknownColor, got %v", err)
	}
	txt := core.Children(ns["eve-name"], red)[0]
	if txt.Kind() != core.KindText {
		t.Fatal("expected text child")
	}
	if err := db.AddColor(txt, green); !errors.Is(err, core.ErrOwnedNode) {
		t.Fatalf("AddColor on text node: want ErrOwnedNode, got %v", err)
	}
}

func TestAppendErrors(t *testing.T) {
	db, ns := buildMovieDB(t)
	// Child lacking the color.
	if err := db.Append(ns["bette"], ns["drama"], blue); !errors.Is(err, core.ErrColorIncompatible) {
		t.Fatalf("want ErrColorIncompatible, got %v", err)
	}
	// Already attached in color.
	if err := db.Append(ns["drama"], ns["eve"], red); !errors.Is(err, core.ErrAlreadyAttached) {
		t.Fatalf("want ErrAlreadyAttached, got %v", err)
	}
	// Cycle: attach an ancestor under its descendant.
	if err := db.Detach(ns["comedy"], red); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(ns["eve"], ns["comedy"], red); !errors.Is(err, core.ErrCycle) {
		t.Fatalf("want ErrCycle, got %v", err)
	}
	// Restore for completeness.
	if err := db.Append(ns["genres"], ns["comedy"], red); err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatalf("restored db should validate: %v", err)
	}
}

func TestInsertBefore(t *testing.T) {
	db := core.NewDatabase(red)
	doc := db.Document()
	root, _ := db.AddElement(doc, "root", red)
	a, _ := db.AddElement(root, "a", red)
	c, _ := db.AddElement(root, "c", red)
	b, _ := db.NewElement("b", red)
	if err := db.InsertBefore(root, b, c, red); err != nil {
		t.Fatal(err)
	}
	got := core.Children(root, red)
	if len(got) != 3 || got[0] != a || got[1] != b || got[2] != c {
		t.Fatalf("children order = %v", got)
	}
	d, _ := db.NewElement("d", red)
	if err := db.InsertBefore(root, d, nil, red); err != nil {
		t.Fatal(err)
	}
	if ch := core.Children(root, red); ch[3] != d {
		t.Fatalf("nil ref should append; children = %v", ch)
	}
}

func TestDetachAndReattach(t *testing.T) {
	db, ns := buildMovieDB(t)
	eve := ns["eve"]
	if err := db.Detach(eve, green); err != nil {
		t.Fatal(err)
	}
	if p := core.Parent(eve, green); p != nil {
		t.Fatalf("after Detach, green parent = %v", p)
	}
	if !eve.HasColor(green) {
		t.Fatal("Detach must not remove the color")
	}
	// Database with a detached colored fragment is invalid.
	if err := db.Validate(); err == nil {
		t.Fatal("detached green fragment should fail validation")
	}
	if err := db.Append(ns["y1950"], eve, green); err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatalf("reattached db should validate: %v", err)
	}
	if err := db.Detach(eve, blue); !errors.Is(err, core.ErrColorIncompatible) {
		t.Fatalf("Detach in missing color: got %v", err)
	}
	if err := db.Detach(ns["genres"], red); err != nil {
		t.Fatal(err)
	}
	if err := db.Detach(ns["genres"], red); !errors.Is(err, core.ErrNotAttached) {
		t.Fatalf("double Detach: got %v", err)
	}
}

func TestRemoveColor(t *testing.T) {
	db, ns := buildMovieDB(t)
	eve := ns["eve"]
	if err := db.RemoveColor(eve, green); err != nil {
		t.Fatal(err)
	}
	if eve.HasColor(green) {
		t.Fatal("RemoveColor did not remove color")
	}
	if p := core.Parent(eve, red); p != ns["comedy"] {
		t.Fatal("red structure must survive RemoveColor(green)")
	}
	// votes child was green-only; it is now a dangling green node.
	if err := db.Validate(); err == nil {
		t.Fatal("dangling green votes node should fail validation")
	}
	if err := db.Delete(ns["eve-votes"]); err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatalf("after deleting dangling node: %v", err)
	}
	if err := db.RemoveColor(eve, blue); !errors.Is(err, core.ErrColorIncompatible) {
		t.Fatalf("RemoveColor missing color: got %v", err)
	}
	if err := db.RemoveColor(db.Document(), red); err == nil {
		t.Fatal("must not remove colors from the document node")
	}
}

func TestDeleteNode(t *testing.T) {
	db, ns := buildMovieDB(t)
	role := ns["role"]
	n := db.NumNodes()
	if err := db.Delete(role); err != nil {
		t.Fatal(err)
	}
	// role had one child element (role-name, red) which becomes dangling, so
	// clean it up too; role itself plus nothing else removed yet.
	if db.NumNodes() >= n {
		t.Fatalf("NumNodes did not shrink: %d -> %d", n, db.NumNodes())
	}
	if db.NodeByID(role.ID()) != nil {
		t.Fatal("deleted node still resolvable by ID")
	}
	// The red parent (eve) must no longer list role.
	for _, ch := range core.Children(ns["eve"], red) {
		if ch == role {
			t.Fatal("deleted node still a child of eve")
		}
	}
	for _, ch := range core.Children(ns["bette"], blue) {
		if ch == role {
			t.Fatal("deleted node still a child of bette")
		}
	}
}

func TestDeleteSubtree(t *testing.T) {
	db, ns := buildMovieDB(t)
	// Deleting the red subtree under comedy: slapstick, names, movies... but
	// eve is also green, so it must survive with only green, and role (also
	// blue) survives as blue.
	if err := db.DeleteSubtree(ns["comedy"], red); err != nil {
		t.Fatal(err)
	}
	eve := ns["eve"]
	if db.NodeByID(eve.ID()) == nil {
		t.Fatal("eve should survive (it is green)")
	}
	if eve.HasColor(red) {
		t.Fatal("eve should have lost red")
	}
	if db.NodeByID(ns["slapstick"].ID()) != nil {
		t.Fatal("red-only slapstick should be gone")
	}
	role := ns["role"]
	if db.NodeByID(role.ID()) == nil || role.HasColor(red) || !role.HasColor(blue) {
		t.Fatal("role should survive as blue-only")
	}
	if err := db.Validate(); err != nil {
		t.Fatalf("after DeleteSubtree: %v", err)
	}
}

func TestLocalOrder(t *testing.T) {
	db, ns := buildMovieDB(t)
	// Red order: genres < comedy < comedy-name < slapstick < ... < eve.
	check := func(a, b *core.Node, c core.Color) {
		t.Helper()
		if db.CompareLocal(a, b, c) >= 0 {
			t.Fatalf("want %v before %v in %q", a, b, c)
		}
	}
	check(ns["genres"], ns["comedy"], red)
	check(ns["comedy"], ns["slapstick"], red)
	check(ns["slapstick"], ns["drama"], red)
	check(ns["awards"], ns["eve"], green)

	// eve has positions in red and green but none in blue.
	if _, ok := db.LocalOrder(ns["eve"], red); !ok {
		t.Fatal("eve should have a red position")
	}
	if _, ok := db.LocalOrder(ns["eve"], blue); ok {
		t.Fatal("eve should have no blue position")
	}

	nodes := []*core.Node{ns["drama"], ns["genres"], ns["comedy"]}
	db.SortLocal(nodes, red)
	if nodes[0] != ns["genres"] || nodes[1] != ns["comedy"] || nodes[2] != ns["drama"] {
		t.Fatalf("SortLocal order wrong: %v", nodes)
	}
}

func TestOrderCacheInvalidation(t *testing.T) {
	db := core.NewDatabase(red)
	root, _ := db.AddElement(db.Document(), "root", red)
	a, _ := db.AddElement(root, "a", red)
	b, _ := db.AddElement(root, "b", red)
	if db.CompareLocal(a, b, red) >= 0 {
		t.Fatal("a should precede b")
	}
	// Move a after b; cached order must be recomputed.
	if err := db.Detach(a, red); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(root, a, red); err != nil {
		t.Fatal(err)
	}
	if db.CompareLocal(b, a, red) >= 0 {
		t.Fatal("after move, b should precede a")
	}
}

func TestTreeNodesAndDescendants(t *testing.T) {
	db, ns := buildMovieDB(t)
	redNodes := db.TreeNodes(red)
	for _, n := range redNodes {
		if !n.HasColor(red) {
			t.Fatalf("TreeNodes(red) returned non-red node %v", n)
		}
	}
	desc := core.Descendants(ns["comedy"], red)
	found := false
	for _, d := range desc {
		if d == ns["eve"] {
			found = true
		}
		if d == ns["eve-votes"] {
			t.Fatal("green-only votes must not be a red descendant")
		}
	}
	if !found {
		t.Fatal("eve should be a red descendant of comedy")
	}
	if core.Descendants(ns["eve"], blue) != nil {
		t.Fatal("descendants in incompatible color should be nil")
	}
}

func TestSiblingAccessors(t *testing.T) {
	_, ns := buildMovieDB(t)
	// comedy's red children: name, slapstick, eve, ... siblings of slapstick.
	fs := core.FollowingSiblings(ns["slapstick"], red)
	if len(fs) == 0 || fs[0] != ns["eve"] {
		t.Fatalf("following siblings of slapstick = %v", fs)
	}
	ps := core.PrecedingSiblings(ns["slapstick"], red)
	if len(ps) == 0 || ps[0] != ns["comedy-name"] {
		t.Fatalf("preceding siblings of slapstick = %v", ps)
	}
	if core.FollowingSiblings(ns["genres"], green) != nil {
		t.Fatal("siblings in incompatible color should be nil")
	}
}

func TestIsAncestorAndRoot(t *testing.T) {
	db, ns := buildMovieDB(t)
	if !core.IsAncestor(ns["genres"], ns["eve"], red) {
		t.Fatal("genres should be a red ancestor of eve")
	}
	if core.IsAncestor(ns["genres"], ns["eve"], green) {
		t.Fatal("genres is not a green ancestor of eve")
	}
	if core.Root(ns["eve"], red) != db.Document() {
		t.Fatal("red root should be the document")
	}
	if core.Root(ns["eve"], blue) != nil {
		t.Fatal("root in incompatible color should be nil")
	}
}

func TestCopySubtree(t *testing.T) {
	db, ns := buildMovieDB(t)
	cp, err := db.CopySubtree(ns["eve"], red)
	if err != nil {
		t.Fatal(err)
	}
	if cp.ID() == ns["eve"].ID() {
		t.Fatal("copy must have fresh identity")
	}
	if cp.HasColor(green) {
		t.Fatal("copy must only carry the requested color")
	}
	sv, _ := core.StringValue(cp, red)
	orig, _ := core.StringValue(ns["eve"], red)
	if sv != orig {
		t.Fatalf("copy string-value %q != original %q", sv, orig)
	}
	if _, err := db.CopySubtree(ns["eve"], blue); !errors.Is(err, core.ErrColorIncompatible) {
		t.Fatalf("copy in missing color: got %v", err)
	}
}

func TestLabel(t *testing.T) {
	_, ns := buildMovieDB(t)
	lbl := ns["eve"].Label()
	if !strings.HasPrefix(lbl, "GR") {
		t.Fatalf("label = %q, want GR prefix (sorted color initials)", lbl)
	}
}

func TestComputeStats(t *testing.T) {
	db, _ := buildMovieDB(t)
	s := db.ComputeStats()
	if s.Elements == 0 || s.TextNodes == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MultiColored != 2 { // eve (red+green) and role (red+blue)
		t.Fatalf("MultiColored = %d, want 2", s.MultiColored)
	}
	if s.StructuralNodes != s.Elements+s.MultiColored {
		t.Fatalf("structural nodes = %d, want elements+multicolored = %d",
			s.StructuralNodes, s.Elements+s.MultiColored)
	}
}

func TestDedup(t *testing.T) {
	db := core.NewDatabase(red)
	a, _ := db.AddElement(db.Document(), "a", red)
	b, _ := db.AddElement(db.Document(), "b", red)
	got := core.Dedup([]*core.Node{a, b, a, b, a})
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("Dedup = %v", got)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	db, ns := buildMovieDB(t)
	// Create a node colored red but never attached: invalid database.
	if _, err := db.NewElement("stray", red); err != nil {
		t.Fatal(err)
	}
	err := db.Validate()
	if err == nil {
		t.Fatal("stray colored node must fail validation")
	}
	var verr *core.ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("want *ValidationError in chain, got %T: %v", err, err)
	}
	_ = ns
}

func TestComments(t *testing.T) {
	db := core.NewDatabase(red)
	root, _ := db.AddElement(db.Document(), "root", red)
	c, err := db.NewComment("a remark", red)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(root, c, red); err != nil {
		t.Fatal(err)
	}
	pi, err := db.NewPI("xml-stylesheet", "href=x", red)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(root, pi, red); err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if v, _ := core.StringValue(c, red); v != "a remark" {
		t.Fatalf("comment string-value = %q", v)
	}
	if pi.Name() != "xml-stylesheet" {
		t.Fatalf("pi target = %q", pi.Name())
	}
}

func TestKindString(t *testing.T) {
	kinds := map[core.Kind]string{
		core.KindDocument:  "document",
		core.KindElement:   "element",
		core.KindAttribute: "attribute",
		core.KindText:      "text",
		core.KindNamespace: "namespace",
		core.KindPI:        "processing-instruction",
		core.KindComment:   "comment",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
