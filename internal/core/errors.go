package core

import "errors"

// Sentinel errors returned (wrapped) by Database operations. Use errors.Is to
// test for them.
var (
	// ErrUnknownColor: the color is empty or not registered in the database.
	ErrUnknownColor = errors.New("unknown color")
	// ErrColorIncompatible: the node does not carry the requested color
	// (Section 3.2: accessors return the empty sequence in this case; mutators
	// return this error).
	ErrColorIncompatible = errors.New("node and color are not compatible")
	// ErrAlreadyColored: next-color constructor applied to a node that
	// already has that color.
	ErrAlreadyColored = errors.New("node already has color")
	// ErrAlreadyAttached: the node already has a parent in that colored tree;
	// a node belongs to at most one rooted tree per color (Definition 3.2).
	ErrAlreadyAttached = errors.New("node already attached in color")
	// ErrNotAttached: the node has no parent in that colored tree.
	ErrNotAttached = errors.New("node not attached in color")
	// ErrCycle: the attachment would create a cycle in a colored tree.
	ErrCycle = errors.New("attachment would create a cycle")
	// ErrNotElement: an element-only operation was applied to another kind.
	ErrNotElement = errors.New("node is not an element")
	// ErrOwnedNode: the operation is invalid on owned (attribute, namespace,
	// text) nodes, whose colors mirror their owner element.
	ErrOwnedNode = errors.New("operation invalid on owned node")
	// ErrDuplicateInTree: a constructed colored tree would contain the same
	// node identity at more than one position (Section 4.2 dynamic error).
	ErrDuplicateInTree = errors.New("node occurs more than once in colored tree")
)
