package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"colorfulxml/internal/core"
)

// randomMCT builds a random MCT database from a seed by applying a sequence
// of constructor and mutation operations, each checked to either succeed or
// fail with a declared error. The resulting database must always validate:
// the mutation API is designed so that invariant-breaking operations are
// rejected up front (except Detach/RemoveColor, which we compensate for).
func randomMCT(seed int64, ops int) *core.Database {
	rng := rand.New(rand.NewSource(seed))
	colors := []core.Color{red, green, blue}
	db := core.NewDatabase(colors...)
	// attached[c] tracks nodes attached in the rooted tree of color c.
	attached := map[core.Color][]*core.Node{
		red:   {db.Document()},
		green: {db.Document()},
		blue:  {db.Document()},
	}
	names := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < ops; i++ {
		c := colors[rng.Intn(len(colors))]
		nodes := attached[c]
		parent := nodes[rng.Intn(len(nodes))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // add a fresh element
			n, err := db.AddElement(parent, names[rng.Intn(len(names))], c)
			if err != nil {
				panic(err)
			}
			attached[c] = append(attached[c], n)
		case 4: // add text
			if parent != db.Document() {
				if _, err := db.AppendText(parent, "t"); err != nil {
					panic(err)
				}
			}
		case 5: // set attribute
			if parent != db.Document() {
				if _, err := db.SetAttribute(parent, "k", "v"); err != nil {
					panic(err)
				}
			}
		case 6, 7: // adopt an element from another color (multi-color node)
			c2 := colors[rng.Intn(len(colors))]
			if c2 == c {
				continue
			}
			cand := attached[c2]
			n := cand[rng.Intn(len(cand))]
			if n == db.Document() || n.HasColor(c) {
				continue
			}
			if err := db.Adopt(parent, n, c); err != nil {
				panic(err)
			}
			attached[c] = append(attached[c], n)
		case 8: // delete a leaf-ish subtree
			if len(nodes) > 1 {
				n := nodes[1+rng.Intn(len(nodes)-1)]
				if err := db.DeleteSubtree(n, c); err != nil {
					panic(err)
				}
				// Rebuild attachment tracking conservatively.
				for _, cc := range colors {
					var keep []*core.Node
					for _, m := range attached[cc] {
						if db.NodeByID(m.ID()) != nil && m.HasColor(cc) {
							keep = append(keep, m)
						}
					}
					attached[cc] = keep
				}
			}
		case 9: // move: detach and reattach under a different parent
			if len(nodes) > 2 {
				n := nodes[1+rng.Intn(len(nodes)-1)]
				if n == parent || n == db.Document() {
					continue
				}
				if core.IsAncestor(n, parent, c) || core.Parent(n, c) == nil {
					continue
				}
				if err := db.Detach(n, c); err != nil {
					panic(err)
				}
				if err := db.Append(parent, n, c); err != nil {
					panic(err)
				}
			}
		}
	}
	return db
}

func TestQuickRandomMutationsPreserveInvariants(t *testing.T) {
	f := func(seed int64) bool {
		db := randomMCT(seed, 120)
		return db.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLocalOrderIsTotalPerColor(t *testing.T) {
	f := func(seed int64) bool {
		db := randomMCT(seed, 80)
		for _, c := range db.Colors() {
			nodes := db.TreeNodes(c)
			// Positions must be strictly increasing in traversal order.
			last := -1
			for _, n := range nodes {
				p, ok := db.LocalOrder(n, c)
				if !ok {
					return false
				}
				if p <= last && n.Kind() != core.KindAttribute {
					// attributes may interleave; TreeNodes excludes them
					return false
				}
				if p > last {
					last = p
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCopySubtreePreservesStringValue(t *testing.T) {
	f := func(seed int64) bool {
		db := randomMCT(seed, 60)
		for _, c := range db.Colors() {
			nodes := db.TreeNodes(c)
			for _, n := range nodes {
				if n.Kind() != core.KindElement {
					continue
				}
				cp, err := db.CopySubtree(n, c)
				if err != nil {
					return false
				}
				a, _ := core.StringValue(n, c)
				b, _ := core.StringValue(cp, c)
				if a != b {
					return false
				}
				break // one element per color keeps the test fast
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStatsStructuralNodeIdentity(t *testing.T) {
	// StructuralNodes == sum over elements of |colors|, which equals
	// Elements + sum over elements of (|colors|-1). With only single- and
	// multi-colored elements this is >= Elements + MultiColored.
	f := func(seed int64) bool {
		db := randomMCT(seed, 100)
		s := db.ComputeStats()
		return s.StructuralNodes >= s.Elements+s.MultiColored && s.Elements >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
