package core

import (
	"errors"
	"fmt"
)

// ValidationError describes one violated MCT invariant, identifying the node
// and color involved.
type ValidationError struct {
	Node  *Node
	Color Color
	Msg   string
}

func (e *ValidationError) Error() string {
	if e.Color != "" {
		return fmt.Sprintf("core: invariant violation at %v in color %q: %s", e.Node, e.Color, e.Msg)
	}
	return fmt.Sprintf("core: invariant violation at %v: %s", e.Node, e.Msg)
}

// Validate checks the MCT database invariants of Definition 3.2:
//
//  1. every colored tree is a rooted, acyclic, ordered tree over nodes that
//     carry that color, rooted at the shared document node;
//  2. parent/child links are mutually consistent in every color;
//  3. each node occurs at most once in each colored tree;
//  4. attribute, namespace and text nodes carry exactly the colors of their
//     owner element, with the owner as parent in each color;
//  5. the document node carries every database color.
//
// It returns all violations found, joined, or nil.
func (db *Database) Validate() error {
	var errs []error
	report := func(n *Node, c Color, format string, args ...any) {
		errs = append(errs, &ValidationError{Node: n, Color: c, Msg: fmt.Sprintf(format, args...)})
	}

	for c := range db.colors {
		if !db.doc.HasColor(c) {
			report(db.doc, c, "document node lacks database color")
		}
	}

	// Per color: walk the rooted tree, then detect stray colored nodes that
	// are not part of it (detached fragments are invalid in a database).
	for _, c := range db.Colors() {
		inTree := make(map[NodeID]bool)
		var walk func(n *Node)
		walk = func(n *Node) {
			if inTree[n.id] {
				report(n, c, "node occurs more than once in colored tree")
				return
			}
			inTree[n.id] = true
			for _, ch := range Children(n, c) {
				if ch.kind != KindText { // text nodes have implicit parentage
					cl := ch.link(c)
					if cl == nil {
						report(ch, c, "child of %v lacks the edge color", n)
						continue
					}
					if cl.parent != n {
						report(ch, c, "child/parent link mismatch: child's parent is %v, expected %v", cl.parent, n)
					}
				} else if ch.owner != n {
					report(ch, c, "text node owned by %v listed under %v", ch.owner, n)
				}
				walk(ch)
			}
		}
		walk(db.doc)

		for _, n := range db.byID {
			if n.owner != nil {
				continue // owned nodes checked below
			}
			if n.HasColor(c) && !inTree[n.id] {
				report(n, c, "colored node is not part of the rooted colored tree")
			}
		}
	}

	// Owned-node invariants.
	for _, n := range db.byID {
		switch n.kind {
		case KindAttribute, KindNamespace:
			if n.owner == nil {
				report(n, "", "attribute/namespace node without owner")
			}
		case KindText:
			if n.owner == nil {
				report(n, "", "text node without owner")
				continue
			}
			// The text node must appear exactly once among its owner's
			// children in every color of the owner.
			for _, c := range n.owner.Colors() {
				count := 0
				for _, ch := range Children(n.owner, c) {
					if ch == n {
						count++
					}
				}
				if count != 1 {
					report(n, c, "text node appears %d times under its owner (want 1)", count)
				}
			}
		}
	}

	if len(errs) == 0 {
		return nil
	}
	return errors.Join(errs...)
}
