package core

import (
	"strconv"
	"strings"
)

// Parent implements the color-aware dm:parent accessor: the parent of n in
// the colored tree c, or nil when n and c are not color compatible or n is a
// root. Attribute, namespace and text nodes report their owner element as
// parent in every color the owner has (Definition 3.2(iii)).
func Parent(n *Node, c Color) *Node {
	if n == nil {
		return nil
	}
	if n.owner != nil {
		if n.owner.HasColor(c) {
			return n.owner
		}
		return nil
	}
	l := n.link(c)
	if l == nil {
		return nil
	}
	return l.parent
}

// Children implements the color-aware dm:children accessor: the ordered
// children of n in the colored tree c, or nil when n and c are not color
// compatible. Attribute and namespace nodes are not children.
func Children(n *Node, c Color) []*Node {
	if n == nil {
		return nil
	}
	l := n.link(c)
	if l == nil {
		return nil
	}
	return l.children
}

// StringValue implements the color-aware dm:string-value accessor. For text,
// attribute, comment, namespace and PI nodes it is the node's own value (when
// color compatible). For element and document nodes it is the concatenation,
// in local order, of the values of all descendant text nodes in the colored
// tree c. An empty string with ok=false indicates color incompatibility.
func StringValue(n *Node, c Color) (string, bool) {
	if n == nil || !n.HasColor(c) {
		return "", false
	}
	switch n.kind {
	case KindText, KindAttribute, KindComment, KindNamespace, KindPI:
		return n.value, true
	}
	var b strings.Builder
	var walk func(m *Node)
	walk = func(m *Node) {
		for _, ch := range Children(m, c) {
			if ch.kind == KindText {
				b.WriteString(ch.value)
			} else {
				walk(ch)
			}
		}
	}
	walk(n)
	return b.String(), true
}

// TypedValue implements the color-aware dm:typed-value accessor. Untyped
// values are returned per the XML data model's atomization rules, simplified:
// a value parseable as an integer yields int64, as a decimal yields float64,
// otherwise the string itself. ok=false indicates color incompatibility.
func TypedValue(n *Node, c Color) (any, bool) {
	s, ok := StringValue(n, c)
	if !ok {
		return nil, false
	}
	return Atomize(s), true
}

// Atomize converts a lexical value into its typed counterpart: int64 when it
// parses as an integer, float64 when it parses as a decimal, else the
// (trimmed) string unchanged.
func Atomize(s string) any {
	t := strings.TrimSpace(s)
	if t == "" {
		return s
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return f
	}
	return s
}

// Root returns the root of the colored tree containing n in color c: the
// highest ancestor reachable through c-colored parent edges. Returns nil if n
// lacks color c.
func Root(n *Node, c Color) *Node {
	if n == nil || !n.HasColor(c) {
		return nil
	}
	cur := n
	for {
		p := Parent(cur, c)
		if p == nil {
			return cur
		}
		cur = p
	}
}

// IsAncestor reports whether a is a proper ancestor of d in color c.
func IsAncestor(a, d *Node, c Color) bool {
	for p := Parent(d, c); p != nil; p = Parent(p, c) {
		if p == a {
			return true
		}
	}
	return false
}

// Descendants returns all descendants of n in color c in local (pre-) order,
// excluding attribute and namespace nodes.
func Descendants(n *Node, c Color) []*Node {
	var out []*Node
	var walk func(m *Node)
	walk = func(m *Node) {
		for _, ch := range Children(m, c) {
			out = append(out, ch)
			walk(ch)
		}
	}
	if n != nil && n.HasColor(c) {
		walk(n)
	}
	return out
}

// FollowingSiblings returns the siblings after n in its parent's child list
// in color c.
func FollowingSiblings(n *Node, c Color) []*Node {
	p := Parent(n, c)
	if p == nil {
		return nil
	}
	sib := Children(p, c)
	for i, s := range sib {
		if s == n {
			return sib[i+1:]
		}
	}
	return nil
}

// PrecedingSiblings returns the siblings before n in reverse local order.
func PrecedingSiblings(n *Node, c Color) []*Node {
	p := Parent(n, c)
	if p == nil {
		return nil
	}
	sib := Children(p, c)
	for i, s := range sib {
		if s == n {
			out := make([]*Node, 0, i)
			for j := i - 1; j >= 0; j-- {
				out = append(out, sib[j])
			}
			return out
		}
	}
	return nil
}
