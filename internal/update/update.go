// Package update implements MCT update expressions (paper Section 4.3):
// the XQuery update extension of Tatarinov et al. ("Updating XML", SIGMOD
// 2001) — FOR/WHERE clauses binding target nodes, followed by an UPDATE
// clause with insert/delete/replace/rename operations — combined with
// MCXQuery's colored path expressions and constructor expressions so that
// updates unambiguously address one colored tree of an MCT database.
//
// Grammar (keywords lower-case, as in the rest of this repository):
//
//	update-expr := (for-clause | let-clause)* ("where" expr)?
//	               "update" $target "{" op ("," op)* "}"
//	op          := "delete" expr
//	             | "insert" expr                      // new child of $target
//	             | "insert" expr "before"|"after" expr
//	             | "replace" expr "with" expr         // replaces text content
//	             | "rename" expr "to" name
//
// Color semantics: each bound node item carries the color of the final step
// of the path that produced it; operations apply within that colored tree.
// Inserting an existing node applies the next-color constructor implicitly
// (the paper: "update operations implicitly add existing colors to new
// nodes, or to existing nodes"); inserting a constructed element materializes
// it in the target's color.
package update

import (
	"fmt"
	"strings"

	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/pathexpr"
)

// OpKind enumerates update operations.
type OpKind uint8

// Update operation kinds.
const (
	OpDelete OpKind = iota
	OpInsert
	OpInsertBefore
	OpInsertAfter
	OpReplace
	OpRename
)

// Op is one operation of the update clause.
type Op struct {
	Kind OpKind
	// Arg is the operation's primary operand (what to delete/insert/replace/
	// rename).
	Arg pathexpr.Expr
	// Ref is the anchor for insert-before/after, the replacement value for
	// replace.
	Ref pathexpr.Expr
	// Name is the new name for rename.
	Name string
}

func (o Op) String() string {
	switch o.Kind {
	case OpDelete:
		return fmt.Sprintf("delete %s", o.Arg)
	case OpInsert:
		return fmt.Sprintf("insert %s", o.Arg)
	case OpInsertBefore:
		return fmt.Sprintf("insert %s before %s", o.Arg, o.Ref)
	case OpInsertAfter:
		return fmt.Sprintf("insert %s after %s", o.Arg, o.Ref)
	case OpReplace:
		return fmt.Sprintf("replace %s with %s", o.Arg, o.Ref)
	case OpRename:
		return fmt.Sprintf("rename %s to %s", o.Arg, o.Name)
	default:
		return "?"
	}
}

// Update is a parsed update expression.
type Update struct {
	Clauses []mcxquery.Clause
	Where   pathexpr.Expr
	Target  string // target variable of the update clause
	Ops     []Op
}

func (u *Update) String() string {
	var b strings.Builder
	for i, c := range u.Clauses {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(c.String())
	}
	if u.Where != nil {
		fmt.Fprintf(&b, " where %s", u.Where)
	}
	fmt.Fprintf(&b, " update $%s { ", u.Target)
	for i, o := range u.Ops {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(o.String())
	}
	b.WriteString(" }")
	return b.String()
}

// NumBindings returns the number of for/let bindings plus the update target,
// the Figure 12 metric for update statements.
func (u *Update) NumBindings() int { return len(u.Clauses) }

// CountPathExpressions counts path expressions across all clauses and ops
// (Figure 11 metric).
func (u *Update) CountPathExpressions() int {
	n := 0
	count := func(e pathexpr.Expr) {
		if e != nil {
			n += pathexpr.CountPaths(e)
		}
	}
	for _, c := range u.Clauses {
		count(c.Expr)
	}
	count(u.Where)
	for _, o := range u.Ops {
		count(o.Arg)
		count(o.Ref)
	}
	return n
}

// Parse parses an update expression.
func Parse(src string) (*Update, error) {
	toks, err := mcxquery.LexQuery(src)
	if err != nil {
		return nil, err
	}
	p := pathexpr.NewParser(toks)
	p.Ext = mcxquery.ExtParse
	u := &Update{}

	for {
		t := p.Peek()
		if t.Kind != pathexpr.TokIdent || (t.Text != "for" && t.Text != "let") ||
			p.PeekAt(1).Kind != pathexpr.TokVar {
			break
		}
		isLet := t.Text == "let"
		p.Advance()
		for {
			v, err := p.Expect(pathexpr.TokVar)
			if err != nil {
				return nil, err
			}
			if isLet {
				if _, err := p.Expect(pathexpr.TokAssign); err != nil {
					return nil, err
				}
			} else if err := p.ExpectIdent("in"); err != nil {
				return nil, err
			}
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			u.Clauses = append(u.Clauses, mcxquery.Clause{Let: isLet, Var: v.Text, Expr: e})
			if p.Peek().Kind == pathexpr.TokComma && p.PeekAt(1).Kind == pathexpr.TokVar {
				p.Advance()
				continue
			}
			break
		}
	}
	if t := p.Peek(); t.Kind == pathexpr.TokIdent && t.Text == "where" {
		p.Advance()
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = e
	}
	if err := p.ExpectIdent("update"); err != nil {
		return nil, err
	}
	tgt, err := p.Expect(pathexpr.TokVar)
	if err != nil {
		return nil, err
	}
	u.Target = tgt.Text
	if _, err := p.Expect(pathexpr.TokLBrace); err != nil {
		return nil, err
	}
	for {
		op, err := parseOp(p)
		if err != nil {
			return nil, err
		}
		u.Ops = append(u.Ops, op)
		if p.Peek().Kind == pathexpr.TokComma {
			p.Advance()
			continue
		}
		break
	}
	if _, err := p.Expect(pathexpr.TokRBrace); err != nil {
		return nil, err
	}
	if p.Peek().Kind != pathexpr.TokEOF {
		return nil, pathexpr.Errf(p.Peek().Pos, "unexpected %s after update expression", p.Peek())
	}
	if len(u.Clauses) == 0 {
		return nil, pathexpr.Errf(0, "update expression requires at least one for/let clause")
	}
	return u, nil
}

func parseOp(p *pathexpr.Parser) (Op, error) {
	t := p.Peek()
	if t.Kind != pathexpr.TokIdent {
		return Op{}, pathexpr.Errf(t.Pos, "expected update operation, found %s", t)
	}
	switch t.Text {
	case "delete":
		p.Advance()
		arg, err := p.ParseExpr()
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: OpDelete, Arg: arg}, nil
	case "insert":
		p.Advance()
		arg, err := p.ParseExpr()
		if err != nil {
			return Op{}, err
		}
		if nt := p.Peek(); nt.Kind == pathexpr.TokIdent && (nt.Text == "before" || nt.Text == "after") {
			p.Advance()
			ref, err := p.ParseExpr()
			if err != nil {
				return Op{}, err
			}
			kind := OpInsertBefore
			if nt.Text == "after" {
				kind = OpInsertAfter
			}
			return Op{Kind: kind, Arg: arg, Ref: ref}, nil
		}
		return Op{Kind: OpInsert, Arg: arg}, nil
	case "replace":
		p.Advance()
		arg, err := p.ParseExpr()
		if err != nil {
			return Op{}, err
		}
		if err := p.ExpectIdent("with"); err != nil {
			return Op{}, err
		}
		ref, err := p.ParseExpr()
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: OpReplace, Arg: arg, Ref: ref}, nil
	case "rename":
		p.Advance()
		arg, err := p.ParseExpr()
		if err != nil {
			return Op{}, err
		}
		if err := p.ExpectIdent("to"); err != nil {
			return Op{}, err
		}
		name, err := p.Expect(pathexpr.TokIdent)
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: OpRename, Arg: arg, Name: name.Text}, nil
	default:
		return Op{}, pathexpr.Errf(t.Pos, "unknown update operation %q", t.Text)
	}
}
