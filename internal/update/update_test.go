package update_test

import (
	"strings"
	"testing"

	"colorfulxml/internal/core"
	"colorfulxml/internal/fixtures"
	"colorfulxml/internal/update"
)

func apply(t *testing.T, m *fixtures.MovieDB, src string) update.Result {
	t.Helper()
	x := update.NewExecutor(m.DB)
	res, err := x.Apply(src)
	if err != nil {
		t.Fatalf("update failed: %v\nupdate: %s", err, src)
	}
	if err := m.DB.Validate(); err != nil {
		t.Fatalf("database invalid after update: %v", err)
	}
	return res
}

// TestInsertBirthDate is the paper's motivating update anomaly example:
// adding a birthDate subelement to an actor. With MCT the actor is stored
// once, so one insert suffices.
func TestInsertBirthDate(t *testing.T) {
	m := fixtures.NewMovieDB()
	res := apply(t, m, `
for $a in document("mdb.xml")/{blue}descendant::actor[{blue}child::name = "Bette Davis"]
update $a { insert <birthDate>1908-04-05</birthDate> }`)
	if res.Tuples != 1 || res.NodesTouched != 1 {
		t.Fatalf("res = %+v", res)
	}
	bd := core.Children(m.Node("bette"), fixtures.Blue)
	found := false
	for _, ch := range bd {
		if ch.Name() == "birthDate" {
			found = true
			if sv, _ := core.StringValue(ch, fixtures.Blue); sv != "1908-04-05" {
				t.Fatalf("birthDate = %q", sv)
			}
			if len(ch.Colors()) != 1 || ch.Colors()[0] != fixtures.Blue {
				t.Fatalf("birthDate colors = %v, want blue only", ch.Colors())
			}
		}
	}
	if !found {
		t.Fatal("birthDate not inserted")
	}
}

func TestDeleteInOneColorPreservesOthers(t *testing.T) {
	m := fixtures.NewMovieDB()
	// Remove eve from the green (award) hierarchy; it must survive as red.
	res := apply(t, m, `
for $y in document("x")/{green}descendant::year,
    $m in $y/{green}child::movie[contains({green}child::name, "Eve")]
update $y { delete $m }`)
	if res.NodesTouched != 1 {
		t.Fatalf("res = %+v", res)
	}
	eve := m.Node("eve")
	if m.DB.NodeByID(eve.ID()) == nil {
		t.Fatal("eve must survive (it is red)")
	}
	if eve.HasColor(fixtures.Green) {
		t.Fatal("eve should have lost green")
	}
	if !eve.HasColor(fixtures.Red) {
		t.Fatal("eve should keep red")
	}
	// The green-only votes child is deleted with the green subtree.
	if m.DB.NodeByID(m.Node("eve-votes").ID()) != nil {
		t.Fatal("green-only votes child should be gone")
	}
}

func TestReplaceContent(t *testing.T) {
	m := fixtures.NewMovieDB()
	res := apply(t, m, `
for $m in document("x")/{green}descendant::movie,
    $v in $m/{green}child::votes
where $v < 10
update $m { replace $v with "10" }`)
	if res.NodesTouched != 1 {
		t.Fatalf("res = %+v", res)
	}
	sv, _ := core.StringValue(m.Node("angry-votes"), fixtures.Green)
	if sv != "10" {
		t.Fatalf("votes = %q", sv)
	}
}

func TestRename(t *testing.T) {
	m := fixtures.NewMovieDB()
	res := apply(t, m, `
for $m in document("x")/{green}descendant::movie
update $m { rename $m/{green}child::votes to first-place-votes }`)
	if res.Tuples != 3 || res.NodesTouched != 3 {
		t.Fatalf("res = %+v", res)
	}
	if m.Node("eve-votes").Name() != "first-place-votes" {
		t.Fatalf("name = %q", m.Node("eve-votes").Name())
	}
}

func TestInsertExistingNodeAdopts(t *testing.T) {
	m := fixtures.NewMovieDB()
	// Duck Soup wins a late nomination: adopt the existing red movie node
	// into the green 1959 year via an update (implicit next-color).
	res := apply(t, m, `
for $y in document("x")/{green}descendant::year[{green}child::name = "1959"],
    $m in document("x")/{red}descendant::movie[{red}child::name = "Duck Soup"]
update $y { insert $m }`)
	if res.NodesTouched != 1 {
		t.Fatalf("res = %+v", res)
	}
	duck := m.Node("duck")
	if !duck.HasColor(fixtures.Green) {
		t.Fatal("duck should now be green")
	}
	if core.Parent(duck, fixtures.Green) != m.Node("y1959") {
		t.Fatal("duck's green parent should be y1959")
	}
}

func TestInsertBeforeAndAfter(t *testing.T) {
	m := fixtures.NewMovieDB()
	apply(t, m, `
for $a in document("x")/{blue}descendant::actor[{blue}child::name = "Bette Davis"]
update $a { insert <x1/> before $a/{blue}child::name }`)
	kids := core.Children(m.Node("bette"), fixtures.Blue)
	if kids[0].Name() != "x1" {
		t.Fatalf("insert before: %v", kids)
	}
	apply(t, m, `
for $a in document("x")/{blue}descendant::actor[{blue}child::name = "Bette Davis"]
update $a { insert <x2/> after $a/{blue}child::name }`)
	kids = core.Children(m.Node("bette"), fixtures.Blue)
	var namesInOrder []string
	for _, k := range kids {
		namesInOrder = append(namesInOrder, k.Name())
	}
	want := "x1,name,x2,movie-role"
	if got := strings.Join(namesInOrder, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

func TestMultipleOpsAndWhere(t *testing.T) {
	m := fixtures.NewMovieDB()
	res := apply(t, m, `
for $m in document("x")/{green}descendant::movie
where $m/{green}child::votes > 10
update $m {
  insert <flag>hit</flag>,
  rename $m/{green}child::votes to v
}`)
	if res.Tuples != 2 || res.NodesTouched != 4 {
		t.Fatalf("res = %+v", res)
	}
}

func TestDeleteAttribute(t *testing.T) {
	m := fixtures.NewMovieDB()
	if _, err := m.DB.SetAttribute(m.Node("eve"), "id", "m1"); err != nil {
		t.Fatal(err)
	}
	apply(t, m, `
for $m in document("x")/{red}descendant::movie[{red}@id = "m1"]
update $m { delete $m/{red}@id }`)
	if m.Node("eve").Attribute("id") != nil {
		t.Fatal("attribute should be deleted")
	}
}

func TestLetClauseInUpdate(t *testing.T) {
	m := fixtures.NewMovieDB()
	res := apply(t, m, `
for $a in document("x")/{blue}descendant::actor
let $n := $a/{blue}child::name
where contains($n, "Marx")
update $a { replace $n with "G. Marx" }`)
	if res.Tuples != 1 {
		t.Fatalf("res = %+v", res)
	}
	sv, _ := core.StringValue(m.Node("groucho-name"), fixtures.Blue)
	if sv != "G. Marx" {
		t.Fatalf("name = %q", sv)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`update $x { delete $y }`, // no for clause
		`for $x in document("d")/{red}child::a update $x { }`,
		`for $x in document("d")/{red}child::a update $x { frobnicate $y }`,
		`for $x in document("d")/{red}child::a update $x { delete $y`,
		`for $x in document("d")/{red}child::a update $x { rename $y }`,
		`for $x in document("d")/{red}child::a update $x { replace $y }`,
		`for $x in document("d")/{red}child::a update { delete $y }`,
		`for $x in document("d")/{red}child::a update $x { delete $y } trailing`,
	}
	for _, src := range bad {
		if _, err := update.Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	m := fixtures.NewMovieDB()
	x := update.NewExecutor(m.DB)
	cases := []string{
		// Target bound to an atomic value.
		`for $v in (1) update $v { insert <a/> }`,
		// Unbound target.
		`for $m in document("x")/{red}descendant::movie update $q { delete $m }`,
		// Delete of atomic.
		`for $m in document("x")/{red}descendant::movie[1] update $m { delete "x" }`,
	}
	for _, src := range cases {
		if _, err := x.Apply(src); err == nil {
			t.Errorf("Apply(%q) should fail", src)
		}
	}
}

func TestUpdateStringAndMetrics(t *testing.T) {
	src := `for $m in document("x")/{green}descendant::movie where $m/{green}child::votes > 10 update $m { insert <flag>hit</flag>, delete $m/{green}child::votes }`
	u, err := update.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumBindings() != 1 {
		t.Fatalf("bindings = %d", u.NumBindings())
	}
	if got := u.CountPathExpressions(); got != 3 {
		t.Fatalf("paths = %d, want 3", got)
	}
	s := u.String()
	for _, frag := range []string{"for $m", "where", "update $m", "insert", "delete"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("rendering missing %q: %s", frag, s)
		}
	}
}
