package update

import (
	"fmt"

	"colorfulxml/internal/core"
	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/pathexpr"
)

// Result reports what an update did.
type Result struct {
	// Tuples is the number of binding tuples the update clause ran for.
	Tuples int
	// NodesTouched is the total number of nodes inserted, deleted, replaced
	// or renamed (the "results" column of the paper's Table 2 for updates).
	NodesTouched int
}

// Executor applies parsed update expressions to an MCT database.
type Executor struct {
	ev *mcxquery.Evaluator
}

// NewExecutor creates an executor over db.
func NewExecutor(db *core.Database) *Executor {
	return &Executor{ev: mcxquery.NewEvaluator(db)}
}

// Apply parses and applies an update expression.
func (x *Executor) Apply(src string) (Result, error) {
	u, err := Parse(src)
	if err != nil {
		return Result{}, err
	}
	return x.Run(u)
}

// Run applies a parsed update expression: it evaluates the binding clauses
// to tuples (exactly like a FLWOR prefix), filters them with the where
// clause, and applies the update operations once per tuple.
func (x *Executor) Run(u *Update) (Result, error) {
	db := x.ev.DB
	env := &pathexpr.Env{DB: db, Ext: x.ev.ExtEval()}
	tuples := []*pathexpr.Env{env}
	for _, cl := range u.Clauses {
		var next []*pathexpr.Env
		for _, te := range tuples {
			v, err := pathexpr.Eval(te, cl.Expr)
			if err != nil {
				return Result{}, err
			}
			if cl.Let {
				next = append(next, te.Bind(cl.Var, v))
				continue
			}
			for _, it := range v {
				next = append(next, te.Bind(cl.Var, pathexpr.Sequence{it}))
			}
		}
		tuples = next
	}
	if u.Where != nil {
		var kept []*pathexpr.Env
		for _, te := range tuples {
			v, err := pathexpr.Eval(te, u.Where)
			if err != nil {
				return Result{}, err
			}
			b, err := pathexpr.EffectiveBool(v)
			if err != nil {
				return Result{}, err
			}
			if b {
				kept = append(kept, te)
			}
		}
		tuples = kept
	}

	res := Result{Tuples: len(tuples)}
	for _, te := range tuples {
		tv, ok := te.Vars[u.Target]
		if !ok {
			return Result{}, fmt.Errorf("update: target $%s is not bound", u.Target)
		}
		if len(tv) != 1 || tv[0].Node == nil {
			return Result{}, fmt.Errorf("update: target $%s must bind a single node", u.Target)
		}
		target := tv[0]
		for _, op := range u.Ops {
			n, err := x.applyOp(te, op, target)
			if err != nil {
				return Result{}, err
			}
			res.NodesTouched += n
		}
	}
	return res, nil
}

// applyOp applies one operation for one tuple; returns nodes touched.
func (x *Executor) applyOp(env *pathexpr.Env, op Op, target pathexpr.Item) (int, error) {
	db := x.ev.DB
	color := target.Color
	if color == "" {
		colors := target.Node.Colors()
		if len(colors) == 0 {
			return 0, fmt.Errorf("update: target node has no colors")
		}
		color = colors[0]
	}
	switch op.Kind {
	case OpDelete:
		v, err := pathexpr.Eval(env, op.Arg)
		if err != nil {
			return 0, err
		}
		n := 0
		for _, it := range v {
			if it.Node == nil {
				return n, fmt.Errorf("update: delete of atomic value")
			}
			c := it.Color
			if c == "" {
				c = color
			}
			if it.Node.Kind() == core.KindAttribute {
				db.RemoveAttribute(it.Node.Owner(), it.Node.Name())
				n++
				continue
			}
			if err := db.DeleteSubtree(it.Node, c); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	case OpInsert, OpInsertBefore, OpInsertAfter:
		v, err := pathexpr.Eval(env, op.Arg)
		if err != nil {
			return 0, err
		}
		var ref *core.Node
		if op.Ref != nil {
			rv, err := pathexpr.Eval(env, op.Ref)
			if err != nil {
				return 0, err
			}
			if len(rv) != 1 || rv[0].Node == nil {
				return 0, fmt.Errorf("update: insert anchor must be a single node")
			}
			ref = rv[0].Node
		}
		n := 0
		for _, it := range v {
			node, err := x.ev.Materialize(it, color, nil)
			if err != nil {
				return n, err
			}
			if node == nil { // atomic item: becomes a text child
				if _, err := db.AppendText(target.Node, pathexpr.ItemString(it)); err != nil {
					return n, err
				}
				n++
				continue
			}
			switch op.Kind {
			case OpInsert:
				if !node.HasColor(color) {
					if err := db.AddColor(node, color); err != nil {
						return n, err
					}
				}
				if err := db.Append(target.Node, node, color); err != nil {
					return n, err
				}
			case OpInsertBefore, OpInsertAfter:
				if !node.HasColor(color) {
					if err := db.AddColor(node, color); err != nil {
						return n, err
					}
				}
				anchor := ref
				if op.Kind == OpInsertAfter {
					sibs := core.FollowingSiblings(ref, color)
					if len(sibs) > 0 {
						anchor = sibs[0]
					} else {
						anchor = nil // append at end
					}
				}
				if err := db.InsertBefore(target.Node, node, anchor, color); err != nil {
					return n, err
				}
			}
			n++
		}
		return n, nil
	case OpReplace:
		v, err := pathexpr.Eval(env, op.Arg)
		if err != nil {
			return 0, err
		}
		rv, err := pathexpr.Eval(env, op.Ref)
		if err != nil {
			return 0, err
		}
		if len(rv) != 1 {
			return 0, fmt.Errorf("update: replace value must be a single item")
		}
		val := pathexpr.ItemString(rv[0])
		n := 0
		for _, it := range v {
			if it.Node == nil {
				return n, fmt.Errorf("update: replace of atomic value")
			}
			switch it.Node.Kind() {
			case core.KindAttribute:
				if _, err := db.SetAttribute(it.Node.Owner(), it.Node.Name(), val); err != nil {
					return n, err
				}
			case core.KindElement:
				if err := db.SetText(it.Node, val); err != nil {
					return n, err
				}
			default:
				return n, fmt.Errorf("update: cannot replace %v", it.Node)
			}
			n++
		}
		return n, nil
	case OpRename:
		v, err := pathexpr.Eval(env, op.Arg)
		if err != nil {
			return 0, err
		}
		n := 0
		for _, it := range v {
			if it.Node == nil {
				return n, fmt.Errorf("update: rename of atomic value")
			}
			if err := db.Rename(it.Node, op.Name); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	default:
		return 0, fmt.Errorf("update: unknown operation")
	}
}
