package colorful

import (
	"fmt"

	"colorfulxml/internal/plan"
	"colorfulxml/internal/storage"
)

// This file implements the concurrent-serving discipline of the DB facade.
//
// Readers are lock-free: a query loads the current immutable store snapshot
// from an atomic pointer and runs entirely against it. Writers serialize
// behind the DB's writer lock, mutate the core database, and the next
// snapshot request publishes a fresh snapshot — incrementally, by replaying
// the core change log onto a copy-on-write clone of the previous snapshot,
// or by a full storage.Load when the delta is too large, overflowed, or
// contains a change with no incremental counterpart.

// incrementalMaxDelta caps the change-log length replayed incrementally; a
// longer delta means enough of the database moved that a bulk Load (which
// also re-packs interval gaps) is the better rebuild.
const incrementalMaxDelta = 4096

// snapshot pairs an immutable store with the database generation it
// reflects. Both fields are write-once; a published snapshot is never
// mutated again.
type snapshot struct {
	st  *storage.Store
	gen uint64
}

// MaintStats counts snapshot maintenance activity: how many snapshots were
// produced by incremental change-log replay versus full rebuilds, and how
// many were published in total (the first build counts as a full rebuild).
type MaintStats struct {
	IncrementalApplies uint64
	FullRebuilds       uint64
	Publishes          uint64
}

// MaintStats returns a point-in-time copy of the maintenance counters.
func (d *DB) MaintStats() MaintStats {
	return MaintStats{
		IncrementalApplies: d.incrementalApplies.Load(),
		FullRebuilds:       d.fullRebuilds.Load(),
		Publishes:          d.publishes.Load(),
	}
}

// SetParallel toggles intra-query parallelism for compiled queries: large
// index-scan leaves are partitioned across worker goroutines by an exchange
// operator (see internal/engine.Exchange). Safe to call at any time.
func (d *DB) SetParallel(on bool) { d.parallel.Store(on) }

// SetParallelThreshold overrides the estimated scan cardinality above which
// a parallel plan partitions a scan (<= 0: plan.DefaultParallelThreshold).
func (d *DB) SetParallelThreshold(n int) { d.parallelThreshold.Store(int64(n)) }

// SetParallelWorkers fixes the partition fan-out of parallel scans (<= 0:
// GOMAXPROCS — which also means no parallelism on a single-core runtime).
func (d *DB) SetParallelWorkers(n int) { d.parallelWorkers.Store(int64(n)) }

// planOptions assembles compile options against one snapshot's catalog.
func (d *DB) planOptions(st *storage.Store) plan.Options {
	opt := plan.Options{Catalog: plan.StoreCatalog{Store: st}}
	if d.parallel.Load() {
		opt.Parallel = true
		opt.ParallelWorkers = int(d.parallelWorkers.Load())
		opt.ParallelThreshold = int(d.parallelThreshold.Load())
	}
	return opt
}

// Refresh brings the published snapshot up to date with the database,
// building it if necessary. Queries refresh lazily on their own; Refresh is
// for callers that want the maintenance cost paid up front.
func (d *DB) Refresh() error {
	_, err := d.currentSnapshot()
	return err
}

// currentSnapshot returns a snapshot at the database's current generation.
//
// Fast path: the published snapshot is current — return it without any
// lock. Slow path: serialize maintainers behind maintMu, then take the read
// lock (holding off writers, so the generation and change log cannot move
// mid-refresh), drain the change log and either replay it onto a clone of
// the previous snapshot or rebuild from scratch.
//
// A query that loses the race with a concurrent writer may serve the
// just-superseded snapshot; that is exactly the pre-state of an update that
// has not been observed yet, so readers always see some statement-boundary
// state.
func (d *DB) currentSnapshot() (*snapshot, error) {
	// coreRef (not the embedded field) keeps this fast path race-free
	// against a degraded-mode core swap.
	if sp := d.snap.Load(); sp != nil && sp.gen == d.coreRef.Load().Generation() {
		return sp, nil
	}
	d.maintMu.Lock()
	defer d.maintMu.Unlock()
	return d.refreshSnapshotLocked()
}

// snapshotForQuery is currentSnapshot for the compiled-query path: when
// another goroutine is mid-rebuild it does not queue behind maintMu but
// reports errMaintInProgress (which wraps plan.ErrUnsupported), sending the
// query to the reference evaluator instead of stalling it. Refresh and
// Explain keep the blocking behavior.
func (d *DB) snapshotForQuery() (*snapshot, error) {
	if sp := d.snap.Load(); sp != nil && sp.gen == d.coreRef.Load().Generation() {
		return sp, nil
	}
	if !d.maintMu.TryLock() {
		return nil, errMaintInProgress
	}
	defer d.maintMu.Unlock()
	return d.refreshSnapshotLocked()
}

// errMaintInProgress wraps plan.ErrUnsupported so Query's compiled path
// falls back to the evaluator while a snapshot rebuild is in flight.
var errMaintInProgress = fmt.Errorf("colorful: snapshot maintenance in progress: %w", plan.ErrUnsupported)

// refreshSnapshotLocked is the maintenance body; the caller holds maintMu.
func (d *DB) refreshSnapshotLocked() (*snapshot, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	gen := d.Database.Generation()
	if sp := d.snap.Load(); sp != nil && sp.gen == gen {
		return sp, nil
	}
	changes, overflow := d.Database.DrainChanges()
	if old := d.snap.Load(); old != nil && !overflow && len(changes) <= incrementalMaxDelta {
		clone := old.st.Clone()
		if err := clone.ApplyChanges(changes); err == nil {
			if verr := d.validateAfterApply(); verr != nil {
				return nil, verr
			}
			d.incrementalApplies.Add(1)
			obsSnapApplies.Inc()
			return d.publish(clone, gen), nil
		}
		// Replay failed (e.g. a ChangeComplex entry): discard the clone and
		// rebuild from the authoritative core state below.
	}
	st, err := storage.Load(d.Database, 0)
	if err != nil {
		return nil, err
	}
	d.fullRebuilds.Add(1)
	obsSnapRebuilds.Inc()
	return d.publish(st, gen), nil
}

// validateAfterApply runs the full core invariant audit after an incremental
// snapshot apply when Options.ValidateInvariants is set. The caller holds
// d.mu shared already, so this goes straight to the embedded core method —
// the locked wrapper would re-enter the RWMutex. A violation aborts the
// refresh before the suspect snapshot is published.
func (d *DB) validateAfterApply() error {
	if !d.durOpts.ValidateInvariants {
		return nil
	}
	if err := d.Database.Validate(); err != nil {
		return fmt.Errorf("colorful: invariant violation after incremental snapshot apply: %w", err)
	}
	return nil
}

func (d *DB) publish(st *storage.Store, gen uint64) *snapshot {
	sp := &snapshot{st: st, gen: gen}
	d.snap.Store(sp)
	d.publishes.Add(1)
	obsSnapPublishes.Inc()
	return sp
}
