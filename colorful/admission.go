package colorful

import (
	"context"
	"errors"
	"sync"
	"time"

	"colorfulxml/internal/obs"
)

// ErrOverloaded is reported when admission control rejects a query: the
// in-flight weight limit was reached and the query's queue wait exceeded
// the admission timeout. Callers should shed load or retry with backoff.
var ErrOverloaded = errors.New("colorful: overloaded: admission queue wait exceeded")

// Admission weights: reads cost one unit; constructor queries — which take
// the writer lock and commit through the WAL — cost more, so a read-mostly
// limit still admits fewer concurrent writers.
const (
	weightRead        = 1
	weightConstructor = 2
)

// defaultAdmissionTimeout bounds queue waits when SetAdmissionTimeout has
// not been called.
const defaultAdmissionTimeout = time.Second

type admWaiter struct {
	weight int64
	ready  chan struct{} // closed when admitted
}

// admission is a weighted max-inflight gate with a FIFO wait queue. A zero
// limit (the default) disables gating: queries are counted for the
// in-flight gauge but never queued. Waiters are admitted strictly in
// arrival order — a light query never jumps a heavy one, so heavy queries
// cannot starve.
type admission struct {
	mu         sync.Mutex
	max        int64 // <= 0: disabled
	inflight   int64
	timeout    time.Duration
	queue      []*admWaiter
	rejections uint64
}

// AdmissionStats is a point-in-time view of the admission gate.
type AdmissionStats struct {
	MaxInflight int64  `json:"max_inflight"` // 0 = disabled
	Inflight    int64  `json:"inflight"`     // total admitted weight
	QueueDepth  int    `json:"queue_depth"`
	Rejections  uint64 `json:"rejections"`
}

// SetMaxInflight bounds the total weight of concurrently executing queries
// (reads weigh 1, constructor queries 2). Excess queries queue in FIFO
// order up to the admission timeout, then fail with ErrOverloaded. A limit
// of 0 (the default) disables admission control; raising the limit admits
// eligible queued queries immediately.
func (d *DB) SetMaxInflight(n int) {
	g := &d.adm
	g.mu.Lock()
	g.max = int64(n)
	g.admitLocked()
	g.mu.Unlock()
}

// SetAdmissionTimeout bounds how long a query may wait in the admission
// queue before failing with ErrOverloaded (default one second).
func (d *DB) SetAdmissionTimeout(t time.Duration) {
	g := &d.adm
	g.mu.Lock()
	g.timeout = t
	g.mu.Unlock()
}

// AdmissionStats returns the admission gate's current state.
func (d *DB) AdmissionStats() AdmissionStats {
	g := &d.adm
	g.mu.Lock()
	defer g.mu.Unlock()
	return AdmissionStats{
		MaxInflight: g.max,
		Inflight:    g.inflight,
		QueueDepth:  len(g.queue),
		Rejections:  g.rejections,
	}
}

// acquire admits weight units, queueing when the gate is at its limit. It
// returns a release closure exactly when err is nil.
func (g *admission) acquire(ctx context.Context, weight int64) (func(), error) {
	g.mu.Lock()
	if g.max <= 0 || (len(g.queue) == 0 && g.inflight+weight <= g.max) {
		g.inflight += weight
		obsAdmInflight.Set(g.inflight)
		g.mu.Unlock()
		obsAdmWaitNanos.Observe(0)
		return func() { g.release(weight) }, nil
	}
	w := &admWaiter{weight: weight, ready: make(chan struct{})}
	g.queue = append(g.queue, w)
	obsAdmQueueDepth.Set(int64(len(g.queue)))
	timeout := g.timeout
	if timeout <= 0 {
		timeout = defaultAdmissionTimeout
	}
	g.mu.Unlock()

	sw := obs.Start()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-w.ready:
		obsAdmWaitNanos.Observe(sw.ElapsedNanos())
		return func() { g.release(weight) }, nil
	case <-timer.C:
		if g.cancelWaiter(w, true) {
			obsAdmWaitNanos.Observe(sw.ElapsedNanos())
			obsAdmRejections.Inc()
			return nil, ErrOverloaded
		}
		// Admitted while timing out; the admit already counted our weight.
		<-w.ready
		obsAdmWaitNanos.Observe(sw.ElapsedNanos())
		return func() { g.release(weight) }, nil
	case <-ctx.Done():
		if g.cancelWaiter(w, false) {
			return nil, ctx.Err()
		}
		<-w.ready
		obsAdmWaitNanos.Observe(sw.ElapsedNanos())
		return func() { g.release(weight) }, nil
	}
}

// cancelWaiter removes w from the queue; false means w was already admitted
// (its ready channel is closed or about to be). Removing a waiter can
// unblock the ones behind it, so admission re-runs.
func (g *admission) cancelWaiter(w *admWaiter, rejected bool) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, q := range g.queue {
		if q == w {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			if rejected {
				g.rejections++
			}
			g.admitLocked()
			return true
		}
	}
	return false
}

func (g *admission) release(weight int64) {
	g.mu.Lock()
	g.inflight -= weight
	g.admitLocked()
	obsAdmInflight.Set(g.inflight)
	g.mu.Unlock()
}

// admitLocked admits queued waiters in FIFO order while capacity lasts
// (all of them when the gate is disabled). Callers hold g.mu.
func (g *admission) admitLocked() {
	for len(g.queue) > 0 && (g.max <= 0 || g.inflight+g.queue[0].weight <= g.max) {
		w := g.queue[0]
		g.queue = g.queue[1:]
		g.inflight += w.weight
		close(w.ready)
	}
	obsAdmQueueDepth.Set(int64(len(g.queue)))
	obsAdmInflight.Set(g.inflight)
}
