package colorful

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"colorfulxml/internal/engine"
	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/obs"
	"colorfulxml/internal/pathexpr"
	"colorfulxml/internal/plan"
	"colorfulxml/internal/storage"
)

// This file is the session kernel: every query of the DB facade — DB.Query,
// DB.QueryContext, DB.TraceQuery, Session.Query*, Stmt.Query* — executes
// through exactly one path, Session.routedParsed. A session carries
// per-session defaults (parallelism override, plan-cache opt-out), prepared
// statements, and per-session traffic counters; the DB-level entry points
// are thin wrappers over an internal auto-session that is never closed, so
// the documented "database remains readable in memory after Close" contract
// of durable.go holds while user sessions drain and die with the DB.
//
// The compiled route consults the DB's shared plan cache before compiling:
// a hit skips parse+compile cost entirely (the Table 2 workload — many
// clients, a small vocabulary of query templates — hits almost always) and
// is reported as its own query route ("cached") so cache effectiveness is
// visible in BENCH lines. Cached plans are epoch-guarded (see plan.Cache and
// storage.StatsEpoch) and always executed as clones (engine.Op.Clone), so
// one plan serves any number of concurrent executions.

// ErrSessionClosed is reported when a query or statement executes through a
// session that has been closed — by Session.Close or by DB.Close draining
// all sessions.
var ErrSessionClosed = errors.New("colorful: session is closed")

// Session is a query context over one DB: per-session default options,
// prepared statements, and traffic counters. Sessions are safe for
// concurrent use; Close drains in-flight queries and invalidates the
// session's statements.
type Session struct {
	db *DB

	// mu guards closed and stmts; wg counts in-flight executions so Close
	// can drain them.
	mu     sync.Mutex
	closed bool
	stmts  map[*Stmt]struct{}
	wg     sync.WaitGroup

	// auto marks the DB-internal session behind the DB-level entry points:
	// exempt from DB.Close's drain, keeping the database readable in memory
	// after Close.
	auto bool

	// parallelOverride is the per-session intra-query parallelism default:
	// -1 inherits the DB setting, 0 forces it off, 1 forces it on.
	parallelOverride atomic.Int32
	// noCache opts this session's queries out of the shared plan cache
	// (neither probing nor populating it).
	noCache atomic.Bool

	// Per-session counters (see SessionStats).
	nQueries      atomic.Uint64
	nCached       atomic.Uint64
	nCompiled     atomic.Uint64
	nFallbacks    atomic.Uint64
	nConstructors atomic.Uint64
	nErrors       atomic.Uint64
}

// SessionStats is a point-in-time copy of one session's traffic counters,
// by query route.
type SessionStats struct {
	Queries      uint64
	CacheHits    uint64 // compiled route served from the plan cache
	Compiled     uint64 // compiled route with a fresh compile
	Fallbacks    uint64 // evaluator route (unsupported or parse error)
	Constructors uint64 // constructor route (mutating queries)
	Errors       uint64
}

func newSession(d *DB, auto bool) *Session {
	s := &Session{db: d, auto: auto, stmts: map[*Stmt]struct{}{}}
	s.parallelOverride.Store(-1)
	return s
}

// Session opens a new session. A session created after DB.Close is born
// closed: every operation on it reports ErrSessionClosed.
func (d *DB) Session() *Session {
	s := newSession(d, false)
	d.sessMu.Lock()
	if d.sessClosed {
		s.closed = true
	} else {
		d.sessions[s] = struct{}{}
	}
	d.sessMu.Unlock()
	return s
}

// Close drains the session's in-flight queries, closes its prepared
// statements (further executions report ErrSessionClosed), and detaches it
// from the DB. Idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	// New executions are refused now; wait out the ones already running.
	s.wg.Wait()
	s.mu.Lock()
	stmts := s.stmts
	s.stmts = nil
	s.mu.Unlock()
	for st := range stmts {
		st.markClosed()
	}
	s.db.forgetSession(s)
	return nil
}

// drainSessions closes every open user session, waiting for their in-flight
// queries. Runs without d.mu: draining waits on queries that may need the
// lock themselves.
func (d *DB) drainSessions() {
	d.sessMu.Lock()
	d.sessClosed = true
	sessions := make([]*Session, 0, len(d.sessions))
	for s := range d.sessions {
		sessions = append(sessions, s)
	}
	d.sessMu.Unlock()
	for _, s := range sessions {
		s.Close()
	}
}

func (d *DB) forgetSession(s *Session) {
	d.sessMu.Lock()
	delete(d.sessions, s)
	d.sessMu.Unlock()
}

// begin admits one execution into the session; every entry point pairs it
// with end. Refusing here (not deeper) is what makes ErrSessionClosed a
// clean boundary: a closed session never touches the snapshot or the locks.
func (s *Session) begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	s.wg.Add(1)
	return nil
}

func (s *Session) end() { s.wg.Done() }

// SetParallel overrides the DB-level intra-query parallelism setting for
// queries issued through this session.
func (s *Session) SetParallel(on bool) {
	if on {
		s.parallelOverride.Store(1)
	} else {
		s.parallelOverride.Store(0)
	}
}

// SetPlanCache opts this session in or out of the shared plan cache
// (sessions participate by default). An opted-out session neither probes
// nor populates the cache — every compiled query pays a fresh compile.
func (s *Session) SetPlanCache(use bool) { s.noCache.Store(!use) }

// Stats returns the session's traffic counters.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Queries:      s.nQueries.Load(),
		CacheHits:    s.nCached.Load(),
		Compiled:     s.nCompiled.Load(),
		Fallbacks:    s.nFallbacks.Load(),
		Constructors: s.nConstructors.Load(),
		Errors:       s.nErrors.Load(),
	}
}

func (s *Session) observe(route queryRoute, err error) {
	s.nQueries.Add(1)
	switch route {
	case routeCached:
		s.nCached.Add(1)
	case routeCompiled:
		s.nCompiled.Add(1)
	case routeEvaluator:
		s.nFallbacks.Add(1)
	case routeConstructor:
		s.nConstructors.Add(1)
	}
	if err != nil {
		s.nErrors.Add(1)
	}
}

// Query parses and evaluates an MCXQuery expression under this session's
// defaults; see DB.Query for semantics.
func (s *Session) Query(src string) ([]Item, error) {
	return s.QueryContext(context.Background(), src)
}

// QueryContext is Query under a context deadline or cancellation.
func (s *Session) QueryContext(ctx context.Context, src string) ([]Item, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	sw := obs.Start()
	out, route, err := s.routed(ctx, src, nil)
	s.db.observeQuery(src, sw.ElapsedNanos(), len(out), route, err)
	s.observe(route, err)
	return out, err
}

// --- the single execution path -------------------------------------------

// childSpan/endSpan/spanAttr make tracing optional along the one execution
// path: a nil parent produces nil children and no-ops, so the untraced hot
// path pays only nil checks.
func childSpan(parent *obs.Span, name string) *obs.Span {
	if parent == nil {
		return nil
	}
	return parent.Child(name)
}

func endSpan(s *obs.Span) {
	if s != nil {
		s.End()
	}
}

func spanAttr(s *obs.Span, key string, value any) {
	if s != nil {
		s.SetAttr(key, value)
	}
}

// routed parses and executes one query. The caller holds a begin/end
// bracket; root, when non-nil, receives phase spans (TraceQuery).
func (s *Session) routed(ctx context.Context, src string, root *obs.Span) ([]Item, queryRoute, error) {
	ps := childSpan(root, "parse")
	e, perr := mcxquery.ParseQuery(src)
	endSpan(ps)
	return s.routedParsed(ctx, src, e, perr, nil, root)
}

// routedParsed is the single execution path behind every query entry point.
// st, when non-nil, is the prepared statement issuing the query (its held
// plan joins the cache lookup).
func (s *Session) routedParsed(ctx context.Context, src string, e pathexpr.Expr, perr error, st *Stmt, root *obs.Span) ([]Item, queryRoute, error) {
	d := s.db
	readOnly := perr == nil && !plan.HasConstructors(e)

	// Admission: reads weigh 1, constructor queries (which take the writer
	// lock and commit through the WAL) weigh weightConstructor. Parse errors
	// route to the evaluator for diagnostics and weigh like reads.
	weight := int64(weightRead)
	if perr == nil && !readOnly {
		weight = weightConstructor
	}
	as := childSpan(root, "admission")
	release, err := d.adm.acquire(ctx, weight)
	endSpan(as)
	if err != nil {
		return nil, routeRejected, err
	}
	defer release()

	if readOnly {
		out, cached, cerr := s.compiled(ctx, src, e, st, root)
		if cerr == nil {
			if cached {
				return out, routeCached, nil
			}
			return out, routeCompiled, nil
		}
		if !errors.Is(cerr, plan.ErrUnsupported) {
			return nil, routeCompiled, cerr
		}
		spanAttr(root, "fallback", cerr.Error())
	}
	if err := ctx.Err(); err != nil {
		return nil, routeEvaluator, err
	}
	// Evaluator path. Constructor queries mutate the database and need the
	// writer lock; unsupported-but-read-only queries (and parse errors,
	// which the evaluator re-reports with its own diagnostics) share it.
	if readOnly || perr != nil {
		d.mu.RLock()
		defer d.mu.RUnlock()
		es := childSpan(root, "evaluate")
		out, err := d.evalItems(src)
		endSpan(es)
		return out, routeEvaluator, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// The evaluator may mutate the database even on a failing query, so the
	// durable commit runs regardless of the query's outcome — the on-disk
	// state must track whatever the in-memory state became.
	m, err := d.beginCommit()
	if err != nil {
		// Degraded/failed/closed: refused before anything mutated.
		return nil, routeConstructor, err
	}
	es := childSpan(root, "evaluate")
	out, err2 := d.evalItems(src)
	endSpan(es)
	ws := childSpan(root, "wal.commit")
	cerr := d.commitChanges(m)
	endSpan(ws)
	if err2 == nil && cerr != nil {
		err2 = cerr
	}
	return out, routeConstructor, err2
}

// compiled serves a constructor-free query from the compiled route: resolve
// the snapshot, resolve the plan (cache, held statement plan, or fresh
// compile), execute a clone. The bool result reports whether a cached plan
// served the query.
func (s *Session) compiled(ctx context.Context, src string, e pathexpr.Expr, st *Stmt, root *obs.Span) ([]Item, bool, error) {
	d := s.db
	ss := childSpan(root, "snapshot")
	sp, err := d.snapshotForQuery()
	endSpan(ss)
	if err != nil {
		return nil, false, err
	}
	c, cached, err := s.planFor(src, e, sp, st, root)
	if err != nil {
		return nil, false, err
	}
	out, err := s.execCompiled(ctx, sp, c, root)
	return out, cached, err
}

// planFor resolves the physical plan for one execution. Lookup order:
// shared plan cache (epoch-checked), the issuing statement's held plan
// (survives cache thrash), fresh compile. Only successful compiles populate
// the cache — plan.ErrUnsupported sends the query to the evaluator without
// ever touching cache state, so the fallback route stays invisible to cache
// statistics and can never pin a failure.
func (s *Session) planFor(src string, e pathexpr.Expr, sp *snapshot, st *Stmt, root *obs.Span) (*plan.Compiled, bool, error) {
	d := s.db
	opt := s.planOptions(sp.st)
	epoch := sp.st.StatsEpoch()
	useCache := !s.noCache.Load()
	if useCache {
		if c, ok := d.planCache.Get(src, opt, epoch); ok {
			spanAttr(root, "plancache", "hit")
			if st != nil {
				st.hold(c, opt, epoch)
			}
			return c, true, nil
		}
	}
	if st != nil {
		if c, ok := st.held(opt, epoch); ok {
			// Evicted from the shared cache but still epoch-valid: the
			// statement's own copy serves the query and re-seeds the cache.
			if useCache {
				d.planCache.Put(src, opt, epoch, c)
			}
			spanAttr(root, "plancache", "stmt")
			return c, true, nil
		}
	}
	cs := childSpan(root, "compile")
	c, err := plan.Compile(e, opt)
	endSpan(cs)
	if err != nil {
		return nil, false, err
	}
	if useCache {
		d.planCache.Put(src, opt, epoch, c)
	}
	if st != nil {
		st.hold(c, opt, epoch)
	}
	return c, false, nil
}

// execCompiled executes one compiled plan on a snapshot. The plan may be
// shared (cache, statement), so the execution always runs a clone of the
// operator tree — per-run state never touches the prototype.
func (s *Session) execCompiled(ctx context.Context, sp *snapshot, c *plan.Compiled, root *obs.Span) ([]Item, error) {
	d := s.db
	op := c.Root.Clone()
	if root != nil {
		es := childSpan(root, "execute")
		rows, _, err := engine.TraceExec(ctx, sp.st, op, es)
		endSpan(es)
		if err != nil {
			return nil, err
		}
		ms := childSpan(root, "map-results")
		nodes := make([]storage.SNode, len(rows))
		for i, r := range rows {
			nodes[i] = r[c.OutCol]
		}
		out := d.mapNodes(nodes, c)
		endSpan(ms)
		return out, nil
	}
	// The streaming path recycles execution scratch through the plan's
	// memory pool: SNodes are copied out of each batch here, so nothing
	// references the scratch once the execution returns. The traced path
	// above materializes arena-backed rows and must stay unpooled.
	var nodes []storage.SNode
	_, err := engine.ExecBatchesPooled(ctx, sp.st, c.Mem, op, func(b *engine.Batch) error {
		for i := 0; i < b.Len(); i++ {
			nodes = append(nodes, b.Row(i)[c.OutCol])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return d.mapNodes(nodes, c), nil
}

// planOptions assembles this session's compile options against one
// snapshot's catalog: the DB defaults with the session's parallelism
// override applied.
func (s *Session) planOptions(st *storage.Store) plan.Options {
	opt := s.db.planOptions(st)
	switch s.parallelOverride.Load() {
	case 0:
		opt.Parallel = false
		opt.ParallelWorkers = 0
		opt.ParallelThreshold = 0
	case 1:
		if !opt.Parallel {
			opt.Parallel = true
			opt.ParallelWorkers = int(s.db.parallelWorkers.Load())
			opt.ParallelThreshold = int(s.db.parallelThreshold.Load())
		}
	}
	return opt
}

// PlanCacheStats returns the DB's shared plan-cache counters (also served
// by the /debug/plancache endpoint).
func (d *DB) PlanCacheStats() plan.CacheStats { return d.planCache.Stats() }
