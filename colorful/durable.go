package colorful

import (
	"errors"
	"fmt"

	"colorfulxml/internal/core"
	"colorfulxml/internal/obs"
	"colorfulxml/internal/storage"
	"colorfulxml/internal/vfs"
	"colorfulxml/internal/wal"
)

// This file is the durable lifecycle of the DB facade: Open recovers a
// database from a directory (checkpoint + write-ahead log), every mutation
// that commits through the DB wrappers is appended to the WAL before the
// mutator returns, and checkpoints — explicit or triggered by WAL growth —
// compact the log. See internal/storage's durable.go for the on-disk
// protocol.
//
// Durability covers exactly the store-visible state: the rooted colored
// trees with their tags, attributes and text. Detached fragments, comments
// and processing instructions have no store representation and do not
// survive a restart; code that needs them must re-create them after Open.

// ErrClosed is reported by operations on a closed durable database.
var ErrClosed = errors.New("colorful: database is closed")

// defaultCheckpointBytes is the WAL size at which a checkpoint is taken
// automatically.
const defaultCheckpointBytes = 4 << 20

// Options configures a durable database directory.
type Options struct {
	// PoolPages sizes the recovered store's buffer pool (0: default).
	PoolPages int
	// NoSync disables the per-commit fsync. Commits then survive process
	// crashes (the OS still has the data) but not machine crashes.
	NoSync bool
	// CheckpointBytes is the WAL size that triggers an automatic
	// checkpoint (0: a 4 MiB default; negative: never automatically).
	CheckpointBytes int64
	// FS overrides the filesystem, for tests and fault injection.
	FS vfs.FS
	// ValidateInvariants enables the debug invariant sweep: the full
	// core.Database.Validate audit runs on the recovered state before Open
	// returns, and again after every incremental snapshot maintenance apply.
	// Expensive (it walks every node in every color); meant for tests and
	// harnesses, not production serving.
	ValidateInvariants bool
}

// Open opens (creating if necessary) a durable database in dir, recovering
// any previously committed state and registering the given colors if they
// are not already present. Every mutation made through the DB wrappers is
// written ahead to a checksummed log and survives a crash; Close seals the
// log cleanly but an unclean exit loses nothing committed.
func Open(dir string, colors ...Color) (*DB, error) {
	return OpenOptions(dir, Options{}, colors...)
}

// OpenOptions is Open with explicit durability options.
func OpenOptions(dir string, opts Options, colors ...Color) (*DB, error) {
	policy := wal.SyncAlways
	if opts.NoSync {
		policy = wal.SyncNever
	}
	dur, st, stats, err := storage.OpenDurable(dir, storage.DurableOptions{
		FS: opts.FS, PoolPages: opts.PoolPages, Sync: policy,
	})
	if err != nil {
		return nil, err
	}
	cdb, err := storage.Reconstruct(st)
	if err != nil {
		dur.Close()
		return nil, fmt.Errorf("colorful: reconstructing recovered store: %w", err)
	}
	if opts.ValidateInvariants {
		if verr := cdb.Validate(); verr != nil {
			dur.Close()
			return nil, fmt.Errorf("colorful: recovered state violates core invariants: %w", verr)
		}
	}
	d := wrap(cdb)
	d.dur = dur
	d.durOpts = opts
	if d.durOpts.CheckpointBytes == 0 {
		d.durOpts.CheckpointBytes = defaultCheckpointBytes
	}
	d.recovery = stats

	// Register any missing colors; like every other mutation this commits
	// through the WAL (AddDatabaseColor is a no-op for existing colors, so
	// reopening with the same colors appends nothing).
	m := d.Database.Mark()
	for _, c := range colors {
		d.Database.AddDatabaseColor(c)
	}
	if err := d.commitChanges(m); err != nil {
		dur.Close()
		return nil, err
	}
	return d, nil
}

// Recovery returns what opening this database found and replayed (zero for
// databases not created by Open).
func (d *DB) Recovery() storage.RecoveryStats { return d.recovery }

// DurabilityStats is a point-in-time view of the durability machinery.
type DurabilityStats struct {
	// Durable reports whether the database was created by Open and is
	// still accepting durable commits.
	Durable bool
	// WALBytes is the size of the open WAL segment.
	WALBytes int64
	// Checkpoints counts checkpoints installed since Open.
	Checkpoints uint64
	// Recovery is what Open recovered.
	Recovery storage.RecoveryStats
}

// DurabilityStats returns the durability counters; Durable is false for
// in-memory databases and for closed or failed durable ones.
func (d *DB) DurabilityStats() DurabilityStats {
	s := DurabilityStats{
		Checkpoints: d.checkpoints.Load(),
		Recovery:    d.recovery,
	}
	d.mu.RLock()
	if d.dur != nil && d.durErr == nil {
		s.Durable = true
		s.WALBytes = d.dur.LogBytes()
	}
	d.mu.RUnlock()
	return s
}

// Checkpoint synchronously captures the current state as a checkpoint and
// truncates the WAL. Commits made after Checkpoint returns land in a fresh
// log segment.
func (d *DB) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.durErr != nil {
		return d.durErr
	}
	if d.dur == nil {
		return errors.New("colorful: Checkpoint on a non-durable database")
	}
	return d.checkpointLocked()
}

// Close drains and closes every open session (their in-flight queries
// finish; further session and statement executions report ErrSessionClosed),
// then seals the write-ahead log and releases the directory. The database
// remains readable in memory through the DB-level query methods, but
// further mutations report ErrClosed; a later Open recovers everything
// committed. Close is idempotent.
func (d *DB) Close() error {
	// Drain before taking d.mu: in-flight session queries may need the lock
	// themselves (constructor commits, evaluator reads).
	d.drainSessions()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dur == nil {
		return nil
	}
	d.ckptWG.Wait()
	err := d.dur.Close()
	d.dur = nil
	d.durErr = ErrClosed
	if cerr := d.takeCkptErr(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// beginCommit opens a durable commit scope. The caller must hold d.mu
// exclusively across beginCommit, the mutation, and commitChanges.
func (d *DB) beginCommit() core.ChangeMark {
	if d.dur == nil {
		return core.ChangeMark{}
	}
	return d.Database.Mark()
}

// commitChanges makes the mutation performed since the mark durable: its
// change-log entries are appended (checksummed, and fsynced unless NoSync)
// to the WAL before the mutator returns to its caller. Batches the log
// cannot carry — a ChangeComplex entry, or a mark invalidated by change-log
// overflow — force a synchronous full checkpoint instead.
//
// A durability failure poisons the database: the in-memory state may
// already include the mutation, so rather than silently diverging from the
// on-disk state, every further commit reports the original error.
func (d *DB) commitChanges(m core.ChangeMark) error {
	if d.dur == nil {
		return d.durErr // nil for purely in-memory databases
	}
	if d.durErr != nil {
		return d.durErr
	}
	if err := d.takeCkptErr(); err != nil {
		d.durErr = fmt.Errorf("colorful: background checkpoint failed, database is no longer durable: %w", err)
		return d.durErr
	}
	changes, ok := d.Database.ChangesSince(m)
	if ok {
		if len(changes) == 0 {
			return nil
		}
		complex := false
		for _, ch := range changes {
			if ch.Kind == core.ChangeComplex {
				complex = true
				break
			}
		}
		if !complex {
			if err := d.dur.Append(changes); err != nil {
				d.durErr = fmt.Errorf("colorful: WAL append failed, database is no longer durable: %w", err)
				return d.durErr
			}
			if t := d.durOpts.CheckpointBytes; t > 0 && d.dur.LogBytes() >= t {
				d.autoCheckpointLocked()
			}
			return nil
		}
	}
	return d.checkpointLocked()
}

// checkpointLocked rotates the WAL and synchronously installs a checkpoint
// of the current state. Caller holds d.mu exclusively.
func (d *DB) checkpointLocked() error {
	sw := obs.Start()
	d.ckptWG.Wait() // serialize with an in-flight background install
	if err := d.takeCkptErr(); err != nil {
		d.durErr = fmt.Errorf("colorful: background checkpoint failed, database is no longer durable: %w", err)
		return d.durErr
	}
	epoch, err := d.dur.Rotate()
	if err != nil {
		d.durErr = fmt.Errorf("colorful: checkpoint failed, database is no longer durable: %w", err)
		return d.durErr
	}
	st, err := storage.Load(d.Database, d.durOpts.PoolPages)
	if err != nil {
		d.durErr = fmt.Errorf("colorful: checkpoint failed, database is no longer durable: %w", err)
		return d.durErr
	}
	if err := d.dur.InstallCheckpoint(epoch, st); err != nil {
		d.durErr = fmt.Errorf("colorful: checkpoint failed, database is no longer durable: %w", err)
		return d.durErr
	}
	d.checkpoints.Add(1)
	obsCheckpoints.Inc()
	obsCheckpointNanos.Observe(sw.ElapsedNanos())
	return nil
}

// autoCheckpointLocked starts a background checkpoint: the WAL rotation and
// the store image are taken synchronously (the caller holds d.mu, so the
// image is exactly the commit's post-state), the page writing and manifest
// installation proceed off the writer's critical path. At most one runs at
// a time; WAL appends continue concurrently into the new segment.
func (d *DB) autoCheckpointLocked() {
	if !d.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	epoch, err := d.dur.Rotate()
	if err != nil {
		d.setCkptErr(err)
		d.ckptBusy.Store(false)
		return
	}
	st, err := storage.Load(d.Database, d.durOpts.PoolPages)
	if err != nil {
		d.setCkptErr(err)
		d.ckptBusy.Store(false)
		return
	}
	dur := d.dur
	d.ckptWG.Add(1)
	sw := obs.Start()
	go func() {
		defer d.ckptWG.Done()
		defer d.ckptBusy.Store(false)
		if err := dur.InstallCheckpoint(epoch, st); err != nil {
			d.setCkptErr(err)
			return
		}
		d.checkpoints.Add(1)
		obsCheckpoints.Inc()
		obsCheckpointNanos.Observe(sw.ElapsedNanos())
	}()
}

func (d *DB) setCkptErr(err error) {
	d.ckptErrMu.Lock()
	if d.ckptErr == nil {
		d.ckptErr = err
	}
	d.ckptErrMu.Unlock()
}

func (d *DB) takeCkptErr() error {
	d.ckptErrMu.Lock()
	defer d.ckptErrMu.Unlock()
	return d.ckptErr
}
