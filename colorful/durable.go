package colorful

import (
	"errors"
	"fmt"
	"time"

	"colorfulxml/internal/core"
	"colorfulxml/internal/obs"
	"colorfulxml/internal/storage"
	"colorfulxml/internal/vfs"
	"colorfulxml/internal/wal"
)

// This file is the durable lifecycle of the DB facade: Open recovers a
// database from a directory (checkpoint + write-ahead log), every mutation
// that commits through the DB wrappers is appended to the WAL before the
// mutator returns, and checkpoints — explicit or triggered by WAL growth —
// compact the log. See internal/storage's durable.go for the on-disk
// protocol.
//
// Durability covers exactly the store-visible state: the rooted colored
// trees with their tags, attributes and text. Detached fragments, comments
// and processing instructions have no store representation and do not
// survive a restart; code that needs them must re-create them after Open.

// ErrClosed is reported by operations on a closed durable database.
var ErrClosed = errors.New("colorful: database is closed")

// defaultCheckpointBytes is the WAL size at which a checkpoint is taken
// automatically.
const defaultCheckpointBytes = 4 << 20

// Options configures a durable database directory.
type Options struct {
	// PoolPages sizes the recovered store's buffer pool (0: default).
	PoolPages int
	// NoSync disables the per-commit fsync. Commits then survive process
	// crashes (the OS still has the data) but not machine crashes.
	NoSync bool
	// CheckpointBytes is the WAL size that triggers an automatic
	// checkpoint (0: a 4 MiB default; negative: never automatically).
	CheckpointBytes int64
	// FS overrides the filesystem, for tests and fault injection.
	FS vfs.FS
	// ValidateInvariants enables the debug invariant sweep: the full
	// core.Database.Validate audit runs on the recovered state before Open
	// returns, and again after every incremental snapshot maintenance apply.
	// Expensive (it walks every node in every color); meant for tests and
	// harnesses, not production serving.
	ValidateInvariants bool
	// Retry overrides the transient-failure retry schedule for WAL flushes
	// and checkpoint installs. nil: vfs.DefaultRetryPolicy; a zero policy
	// (&vfs.RetryPolicy{}) disables retries.
	Retry *vfs.RetryPolicy
	// ProbeInterval is how often the degraded-mode recovery probe checks
	// whether the disk accepts writes again (0: 500ms).
	ProbeInterval time.Duration
	// ScrubInterval enables the online integrity scrubber: every interval it
	// re-verifies up to ScrubBudget bytes of at-rest checkpoint and WAL data
	// (0: scrubbing disabled).
	ScrubInterval time.Duration
	// ScrubBudget is the scrubber's per-increment I/O budget in bytes
	// (0: 1 MiB).
	ScrubBudget int64
}

// Open opens (creating if necessary) a durable database in dir, recovering
// any previously committed state and registering the given colors if they
// are not already present. Every mutation made through the DB wrappers is
// written ahead to a checksummed log and survives a crash; Close seals the
// log cleanly but an unclean exit loses nothing committed.
func Open(dir string, colors ...Color) (*DB, error) {
	return OpenOptions(dir, Options{}, colors...)
}

// OpenOptions is Open with explicit durability options.
func OpenOptions(dir string, opts Options, colors ...Color) (*DB, error) {
	policy := wal.SyncAlways
	if opts.NoSync {
		policy = wal.SyncNever
	}
	retry := vfs.DefaultRetryPolicy
	if opts.Retry != nil {
		retry = *opts.Retry
	}
	dur, st, stats, err := storage.OpenDurable(dir, storage.DurableOptions{
		FS: opts.FS, PoolPages: opts.PoolPages, Sync: policy, Retry: retry,
	})
	if err != nil {
		return nil, err
	}
	cdb, err := storage.Reconstruct(st)
	if err != nil {
		dur.Close()
		return nil, fmt.Errorf("colorful: reconstructing recovered store: %w", err)
	}
	if opts.ValidateInvariants {
		if verr := cdb.Validate(); verr != nil {
			dur.Close()
			return nil, fmt.Errorf("colorful: recovered state violates core invariants: %w", verr)
		}
	}
	d := wrap(cdb)
	d.dur = dur
	d.durOpts = opts
	if d.durOpts.CheckpointBytes == 0 {
		d.durOpts.CheckpointBytes = defaultCheckpointBytes
	}
	if d.durOpts.ProbeInterval <= 0 {
		d.durOpts.ProbeInterval = 500 * time.Millisecond
	}
	if d.durOpts.ScrubBudget <= 0 {
		d.durOpts.ScrubBudget = 1 << 20
	}
	d.recovery = stats
	d.stopCh = make(chan struct{})
	obsHealthState.Set(int64(Healthy))

	// Publish the recovered state eagerly: the published snapshot is the
	// rollback basis of degraded-mode error handling, so it must exist
	// before the first durable commit (including the color registration
	// right below).
	if err := d.Refresh(); err != nil {
		dur.Close()
		return nil, fmt.Errorf("colorful: publishing recovered snapshot: %w", err)
	}

	// Register any missing colors; like every other mutation this commits
	// through the WAL (AddDatabaseColor is a no-op for existing colors, so
	// reopening with the same colors appends nothing).
	m := d.Database.Mark()
	for _, c := range colors {
		d.Database.AddDatabaseColor(c)
	}
	d.mu.Lock()
	err = d.commitChanges(m)
	d.mu.Unlock()
	if err != nil {
		d.Close()
		return nil, err
	}
	go d.probeLoop()
	if d.durOpts.ScrubInterval > 0 {
		go d.scrubLoop()
	}
	return d, nil
}

// Recovery returns what opening this database found and replayed (zero for
// databases not created by Open).
func (d *DB) Recovery() storage.RecoveryStats { return d.recovery }

// DurabilityStats is a point-in-time view of the durability machinery.
type DurabilityStats struct {
	// Durable reports whether the database was created by Open and is
	// still accepting durable commits.
	Durable bool
	// WALBytes is the size of the open WAL segment.
	WALBytes int64
	// Checkpoints counts checkpoints installed since Open.
	Checkpoints uint64
	// Recovery is what Open recovered.
	Recovery storage.RecoveryStats
}

// DurabilityStats returns the durability counters; Durable is false for
// in-memory databases and for closed, degraded or failed durable ones.
func (d *DB) DurabilityStats() DurabilityStats {
	s := DurabilityStats{
		Checkpoints: d.checkpoints.Load(),
		Recovery:    d.recovery,
	}
	d.mu.RLock()
	if d.dur != nil && d.durErr == nil {
		s.Durable = d.Health() == Healthy
		s.WALBytes = d.dur.LogBytes()
	}
	d.mu.RUnlock()
	return s
}

// Checkpoint synchronously captures the current state as a checkpoint and
// truncates the WAL. Commits made after Checkpoint returns land in a fresh
// log segment.
func (d *DB) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.durErr != nil {
		return d.durErr
	}
	if d.dur == nil {
		return errors.New("colorful: Checkpoint on a non-durable database")
	}
	if d.Health() == DegradedReadOnly {
		return d.readOnlyErr()
	}
	return d.checkpointLocked()
}

// Close drains and closes every open session (their in-flight queries
// finish; further session and statement executions report ErrSessionClosed),
// then seals the write-ahead log and releases the directory. The database
// remains readable in memory through the DB-level query methods, but
// further mutations report ErrClosed; a later Open recovers everything
// committed. Close is idempotent.
func (d *DB) Close() error {
	// Stop the probe and scrubber first: they take d.mu themselves.
	if d.stopCh != nil {
		d.stopOnce.Do(func() { close(d.stopCh) })
	}
	// Drain before taking d.mu: in-flight session queries may need the lock
	// themselves (constructor commits, evaluator reads).
	d.drainSessions()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dur == nil {
		return nil
	}
	d.ckptWG.Wait()
	err := d.dur.Close()
	d.dur = nil
	d.durErr = ErrClosed
	if cerr := d.takeCkptErr(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// beginCommit opens a durable commit scope, refusing — before the caller
// mutates anything — when the database cannot commit: degraded (ErrReadOnly),
// failed (ErrFailed), or closed (ErrClosed). The caller must hold d.mu
// exclusively across beginCommit, the mutation, and commitChanges.
func (d *DB) beginCommit() (core.ChangeMark, error) {
	if d.dur == nil {
		// In-memory databases (durErr nil) have no commit scope; closed
		// durable ones refuse with ErrClosed.
		return core.ChangeMark{}, d.durErr
	}
	switch Health(d.health.Load()) {
	case DegradedReadOnly:
		obsMutationsRejected.Inc()
		return core.ChangeMark{}, d.readOnlyErr()
	case Failed:
		obsMutationsRejected.Inc()
		return core.ChangeMark{}, d.durErr
	}
	return d.Database.Mark(), nil
}

// commitChanges makes the mutation performed since the mark durable: its
// change-log entries are appended (checksummed, and fsynced unless NoSync)
// to the WAL before the mutator returns to its caller. Batches the log
// cannot carry — a ChangeComplex entry, or a mark invalidated by change-log
// overflow — force a synchronous full checkpoint instead.
//
// A durability failure (after the storage layer's transient-error retries
// are exhausted) no longer poisons the database: the mutation is rolled
// back in memory and the database degrades to read-only serving
// (degradeLocked), recovering automatically when the disk heals. Only a
// rollback the change log cannot support moves the database to the
// terminal Failed state.
func (d *DB) commitChanges(m core.ChangeMark) error {
	if d.dur == nil {
		return d.durErr // nil for purely in-memory databases
	}
	if d.durErr != nil {
		return d.durErr
	}
	changes, ok := d.Database.ChangesSince(m)
	if !ok {
		// The mark was invalidated (change-log overflow or a concurrent
		// drain): the mutation cannot be separated for rollback, so a full
		// checkpoint is the only commit path and its failure is terminal.
		if err := d.checkpointLocked(); err != nil {
			return d.failLocked(fmt.Errorf("checkpoint after change-log overflow: %w", err))
		}
		return nil
	}
	// A failed background checkpoint install left the log without a new
	// horizon (nothing is lost — the old checkpoint still anchors
	// recovery). Retry it synchronously under this commit; a second
	// failure degrades.
	if err := d.takeCkptErr(); err != nil {
		if cerr := d.checkpointLocked(); cerr != nil {
			return d.degradeLocked(len(changes), fmt.Errorf("background checkpoint failed: %v; retry: %w", err, cerr))
		}
		return nil // the checkpoint covered this commit's changes too
	}
	if len(changes) == 0 {
		return nil
	}
	complex := false
	for _, ch := range changes {
		if ch.Kind == core.ChangeComplex {
			complex = true
			break
		}
	}
	if complex {
		if err := d.checkpointLocked(); err != nil {
			return d.degradeLocked(len(changes), err)
		}
		return nil
	}
	if err := d.dur.Append(changes); err != nil {
		return d.degradeLocked(len(changes), err)
	}
	if t := d.durOpts.CheckpointBytes; t > 0 && d.dur.LogBytes() >= t {
		d.autoCheckpointLocked()
	}
	return nil
}

// checkpointLocked rotates the WAL and synchronously installs a checkpoint
// of the current state. On success the change log is drained and the
// checkpoint image published as the current snapshot: the checkpoint
// supersedes the log, and the drain keeps the rollback-basis invariant (the
// published snapshot equals the state at the last drain, with no
// ChangeComplex entry left undrained). Caller holds d.mu exclusively.
func (d *DB) checkpointLocked() error {
	sw := obs.Start()
	d.ckptWG.Wait() // serialize with an in-flight background install
	d.takeCkptErr() // superseded: the synchronous install covers everything
	epoch, err := d.dur.Rotate()
	if err != nil {
		return fmt.Errorf("colorful: checkpoint: %w", err)
	}
	st, err := storage.Load(d.Database, d.durOpts.PoolPages)
	if err != nil {
		return fmt.Errorf("colorful: checkpoint: %w", err)
	}
	if err := d.dur.InstallCheckpoint(epoch, st); err != nil {
		return fmt.Errorf("colorful: checkpoint: %w", err)
	}
	d.Database.DrainChanges()
	d.publish(st, d.Database.Generation())
	d.checkpoints.Add(1)
	obsCheckpoints.Inc()
	obsCheckpointNanos.Observe(sw.ElapsedNanos())
	return nil
}

// autoCheckpointLocked starts a background checkpoint: the WAL rotation and
// the store image are taken synchronously (the caller holds d.mu, so the
// image is exactly the commit's post-state), the page writing and manifest
// installation proceed off the writer's critical path. At most one runs at
// a time; WAL appends continue concurrently into the new segment.
func (d *DB) autoCheckpointLocked() {
	if !d.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	epoch, err := d.dur.Rotate()
	if err != nil {
		d.setCkptErr(err)
		d.ckptBusy.Store(false)
		return
	}
	st, err := storage.Load(d.Database, d.durOpts.PoolPages)
	if err != nil {
		d.setCkptErr(err)
		d.ckptBusy.Store(false)
		return
	}
	// The image is the current state under d.mu: drain and publish it now
	// (not when the install finishes) to keep the rollback-basis invariant —
	// the published snapshot equals the state at the last change-log drain.
	d.Database.DrainChanges()
	d.publish(st, d.Database.Generation())
	dur := d.dur
	d.ckptWG.Add(1)
	sw := obs.Start()
	go func() {
		defer d.ckptWG.Done()
		defer d.ckptBusy.Store(false)
		if err := dur.InstallCheckpoint(epoch, st); err != nil {
			d.setCkptErr(err)
			return
		}
		d.checkpoints.Add(1)
		obsCheckpoints.Inc()
		obsCheckpointNanos.Observe(sw.ElapsedNanos())
	}()
}

func (d *DB) setCkptErr(err error) {
	d.ckptErrMu.Lock()
	if d.ckptErr == nil {
		d.ckptErr = err
	}
	d.ckptErrMu.Unlock()
}

// takeCkptErr returns and clears the pending background-checkpoint failure.
// Clearing matters: the caller either retries the checkpoint synchronously or
// supersedes it, and a stale sticky error would poison commits forever.
func (d *DB) takeCkptErr() error {
	d.ckptErrMu.Lock()
	defer d.ckptErrMu.Unlock()
	err := d.ckptErr
	d.ckptErr = nil
	return err
}
