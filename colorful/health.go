package colorful

import (
	"errors"
	"fmt"
	"time"

	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/storage"
	"colorfulxml/internal/update"
)

// This file is the fault-tolerance state machine of a durable DB. A
// database is Healthy until a durable commit fails after the storage
// layer's transient-failure retries are exhausted. Instead of poisoning the
// database forever (the old behavior), the failed mutation is rolled back —
// the in-memory state returns to exactly the last committed state — and the
// DB degrades to read-only serving: queries, sessions and prepared
// statements keep working against the committed state, mutations report
// ErrReadOnly, and a background probe watches the disk. When writes succeed
// again, the log is resealed around a fresh checkpoint (storage.Reseal) and
// the database returns to Healthy. Failed is the terminal state for damage
// the rollback machinery cannot undo (a change-log overflow mid-commit);
// reads may then reflect an unacknowledged mutation and mutations report
// ErrFailed.
//
// The rollback leans on one invariant, maintained by serve.go and
// durable.go: the published snapshot always equals the core state at the
// last change-log drain, and the undrained log holds no ChangeComplex entry
// (any commit carrying one forces a synchronous checkpoint, which drains).
// The committed state is therefore always "published snapshot + committed
// prefix of the undrained log", and the failed mutation is exactly the
// log's suffix past the commit's mark.

// Health is a durable database's serving state.
type Health int32

const (
	// Healthy: mutations and queries both served.
	Healthy Health = iota
	// DegradedReadOnly: a durability failure was rolled back; queries are
	// served from the committed state, mutations report ErrReadOnly, and a
	// background probe tries to heal the disk.
	DegradedReadOnly
	// Failed: an unrecoverable inconsistency (terminal). Queries still run
	// but may observe an unacknowledged mutation; mutations report
	// ErrFailed.
	Failed
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case DegradedReadOnly:
		return "degraded-readonly"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("health(%d)", int32(h))
}

// ErrDegraded is wrapped by every error reported because the database is in
// degraded read-only mode. Not retryable: the condition clears only when
// the background probe heals the disk (watch Health()).
var ErrDegraded = errors.New("colorful: database is degraded after a durability failure")

// ErrReadOnly is reported by mutations while the database is degraded; it
// wraps ErrDegraded. Not retryable.
var ErrReadOnly = fmt.Errorf("mutations are disabled: %w", ErrDegraded)

// ErrFailed is reported by mutations after an unrecoverable durability
// failure. Terminal; not retryable.
var ErrFailed = errors.New("colorful: database has failed")

// IsRetryable reports whether a request that failed with err is worth
// retrying as-is after a short backoff. True for admission-control
// rejections (ErrOverloaded): capacity frees up as in-flight queries
// finish. False for everything else — in particular ErrReadOnly/ErrDegraded
// (wait for Health() to return Healthy instead), ErrFailed and ErrClosed
// (terminal), and ErrSessionClosed (open a new session).
func IsRetryable(err error) bool {
	return errors.Is(err, ErrOverloaded)
}

// Health returns the database's serving state (always Healthy for
// in-memory databases).
func (d *DB) Health() Health { return Health(d.health.Load()) }

// transitionHealth is the single writer of d.health: one CAS along one edge
// of the serving state machine (Healthy <-> DegradedReadOnly, either ->
// Failed). Routing every write through this choke point keeps the machine's
// edges enforceable — the healthtransition analyzer rejects raw stores and
// call sites naming an edge the machine does not have. Returns whether the
// transition happened (false when the state already moved on, e.g. a degrade
// racing a concurrent fail).
func (d *DB) transitionHealth(from, to Health) bool {
	if !d.health.CompareAndSwap(int32(from), int32(to)) {
		return false
	}
	obsHealthState.Set(int64(to))
	return true
}

// HealthInfo is a point-in-time view of the health machinery, also served
// on /debug/health.
type HealthInfo struct {
	// State is the serving state; Cause is the failure that left Healthy
	// (empty when healthy).
	State Health
	Cause string
	// Degrades and Heals count Healthy->DegradedReadOnly transitions and
	// recoveries since Open.
	Degrades uint64
	Heals    uint64
	// Scrub activity (zero when scrubbing is disabled).
	ScrubPasses      uint64
	ScrubFiles       uint64
	ScrubBytes       uint64
	ScrubCorruptions uint64
	// LastCorruption describes the most recent scrub finding, "" if none.
	LastCorruption string
}

// HealthInfo returns the health counters.
func (d *DB) HealthInfo() HealthInfo {
	info := HealthInfo{
		State:            d.Health(),
		Degrades:         d.degrades.Load(),
		Heals:            d.heals.Load(),
		ScrubPasses:      d.scrubPasses.Load(),
		ScrubFiles:       d.scrubFiles.Load(),
		ScrubBytes:       d.scrubBytes.Load(),
		ScrubCorruptions: d.scrubCorruptions.Load(),
	}
	d.causeMu.Lock()
	if d.degradeCause != nil {
		info.Cause = d.degradeCause.Error()
	}
	d.causeMu.Unlock()
	d.scrubLastMu.Lock()
	info.LastCorruption = d.scrubLast
	d.scrubLastMu.Unlock()
	return info
}

// resolve maps n into the current core instance. After a degraded-mode
// rollback swapped the core (degradeLocked), nodes obtained before the swap
// belong to the superseded instance; mutating through them would silently
// miss the live database. Their IDs still resolve — Reconstruct preserves
// node identities — so the locked wrappers translate stale nodes here. A
// node the rollback removed (including detached fragments, which have no
// store representation) resolves to nil and the mutator reports it missing.
// Caller holds d.mu.
func (d *DB) resolve(n *Node) *Node {
	if n == nil || n.Database() == d.Database {
		return n
	}
	return d.Database.NodeByID(n.ID())
}

func (d *DB) setDegradeCause(err error) {
	d.causeMu.Lock()
	d.degradeCause = err
	d.causeMu.Unlock()
}

// readOnlyErr builds the mutation-rejection error for the degraded state,
// carrying the original failure for diagnostics.
func (d *DB) readOnlyErr() error {
	d.causeMu.Lock()
	cause := d.degradeCause
	d.causeMu.Unlock()
	if cause != nil {
		return fmt.Errorf("%w (cause: %v)", ErrReadOnly, cause)
	}
	return ErrReadOnly
}

// degradeLocked rolls back the failed mutation (the change-log suffix past
// the commit's mark) and moves the database to degraded read-only serving.
// The caller holds d.mu exclusively; suffix is ChangesSince(mark) captured
// before any drain. Returns the error the failing mutator reports.
func (d *DB) degradeLocked(suffix int, cause error) error {
	obsCommitErrors.Inc()
	// Quiesce the background checkpoint machinery: an in-flight install may
	// still be writing, and its verdict is superseded by the degrade.
	d.ckptWG.Wait()
	d.takeCkptErr()

	basis := d.snap.Load()
	if basis == nil {
		return d.failLocked(fmt.Errorf("no rollback basis published: %w", cause))
	}
	all, overflow := d.Database.DrainChanges()
	if overflow || len(all) < suffix {
		return d.failLocked(fmt.Errorf("change log overflowed, mutation cannot be rolled back: %w", cause))
	}
	committed := all[:len(all)-suffix]
	st := basis.st.Clone()
	if err := st.ApplyChanges(committed); err != nil {
		return d.failLocked(fmt.Errorf("rollback replay failed: %v: %w", err, cause))
	}
	cdb, err := storage.Reconstruct(st)
	if err != nil {
		return d.failLocked(fmt.Errorf("rollback reconstruction failed: %v: %w", err, cause))
	}
	if d.durOpts.ValidateInvariants {
		if verr := cdb.Validate(); verr != nil {
			return d.failLocked(fmt.Errorf("rolled-back state violates invariants: %v: %w", verr, cause))
		}
	}
	// Swap in the rolled-back database. Reconstruct preserves element
	// identities, so NodeIDs held by clients keep resolving; the evaluator
	// and executor are rebound to the new core instance.
	d.Database = cdb
	d.coreRef.Store(cdb)
	d.ev = mcxquery.NewEvaluator(cdb)
	d.ex = update.NewExecutor(cdb)
	d.publish(st, cdb.Generation())

	d.transitionHealth(Healthy, DegradedReadOnly)
	d.setDegradeCause(cause)
	d.degrades.Add(1)
	obsDegrades.Inc()
	return fmt.Errorf("colorful: commit failed and was rolled back, %w", d.readOnlyErr())
}

// failLocked moves the database to the terminal Failed state. Caller holds
// d.mu exclusively. Failure is reachable from either live state: a commit
// whose rollback machinery gave out fails from Healthy, a degraded database
// whose recovery discovered unrecoverable damage fails from
// DegradedReadOnly.
func (d *DB) failLocked(cause error) error {
	if !d.transitionHealth(Healthy, Failed) {
		d.transitionHealth(DegradedReadOnly, Failed)
	}
	d.setDegradeCause(cause)
	d.durErr = fmt.Errorf("%w: %v", ErrFailed, cause)
	return d.durErr
}

// probeLoop is the disk-recovery monitor, one long-lived goroutine per
// durable database (started by Open, stopped by Close). While the database
// is degraded it polls ProbeDisk at the configured interval and heals when
// the disk accepts durable writes again; while healthy it idles on the
// ticker. A single persistent goroutine avoids any start/stop handoff race
// between consecutive degrades.
func (d *DB) probeLoop() {
	t := time.NewTicker(d.durOpts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stopCh:
			return
		case <-t.C:
		}
		if d.Health() != DegradedReadOnly {
			continue
		}
		d.mu.RLock()
		dur := d.dur
		d.mu.RUnlock()
		if dur == nil {
			return
		}
		obsProbes.Inc()
		if err := dur.ProbeDisk(); err != nil {
			continue
		}
		d.heal()
	}
}

// heal reseals the log around a fresh checkpoint of the committed state and
// returns the database to Healthy. Returns false if the disk gave out again
// mid-reseal (the probe keeps watching).
func (d *DB) heal() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Health() != DegradedReadOnly || d.dur == nil {
		return true // nothing left to heal; stop probing
	}
	// Degraded mode rejected every mutation, so the current core state IS
	// the committed state; image it and reseal.
	st, err := storage.Load(d.Database, d.durOpts.PoolPages)
	if err != nil {
		return false
	}
	if err := d.dur.Reseal(st); err != nil {
		return false
	}
	// The reseal checkpoint supersedes the change log (which is empty
	// anyway — no mutations committed while degraded); publish its image.
	d.Database.DrainChanges()
	d.publish(st, d.Database.Generation())
	d.checkpoints.Add(1)
	d.transitionHealth(DegradedReadOnly, Healthy)
	d.setDegradeCause(nil)
	d.heals.Add(1)
	obsHeals.Inc()
	return true
}

// scrubLoop is the online integrity scrubber: at each tick it verifies a
// budget's worth of at-rest files (checkpoint page checksums, sealed WAL
// record CRCs) and, when corruption is found, triggers a fresh checkpoint —
// the healing action: a new checkpoint supersedes and garbage-collects the
// damaged file. Runs only when Options.ScrubInterval is set.
func (d *DB) scrubLoop() {
	t := time.NewTicker(d.durOpts.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stopCh:
			return
		case <-t.C:
		}
		d.mu.RLock()
		dur := d.dur
		d.mu.RUnlock()
		if dur == nil {
			return
		}
		res, err := dur.ScrubOnce(d.durOpts.ScrubBudget)
		if err != nil {
			continue
		}
		d.scrubFiles.Add(uint64(res.Files))
		d.scrubBytes.Add(uint64(res.Bytes))
		if res.PassComplete {
			d.scrubPasses.Add(1)
		}
		if len(res.Corruptions) > 0 {
			d.scrubCorruptions.Add(uint64(len(res.Corruptions)))
			c := res.Corruptions[0]
			d.scrubLastMu.Lock()
			d.scrubLast = fmt.Sprintf("%s@%d: %s", c.File, c.Offset, c.Detail)
			d.scrubLastMu.Unlock()
			// Heal by checkpoint; only attempt while healthy (a degraded
			// database cannot write one).
			if d.Health() == Healthy {
				_ = d.Checkpoint()
			}
		}
	}
}
