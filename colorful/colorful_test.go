package colorful_test

import (
	"strings"
	"testing"

	"colorfulxml/colorful"
	"colorfulxml/internal/core"
)

// buildSmall constructs a miniature movie database through the public API.
func buildSmall(t *testing.T) *colorful.DB {
	t.Helper()
	db := colorful.New("red", "green")
	doc := db.Document()
	genres, err := db.AddElement(doc, "movie-genres", "red")
	if err != nil {
		t.Fatal(err)
	}
	comedy, _ := db.AddElement(genres, "movie-genre", "red")
	if _, err := db.AddElementText(comedy, "name", "red", "Comedy"); err != nil {
		t.Fatal(err)
	}
	movie, _ := db.AddElement(comedy, "movie", "red")
	if _, err := db.AddElementText(movie, "name", "red", "All About Eve"); err != nil {
		t.Fatal(err)
	}
	awards, _ := db.AddElement(doc, "movie-awards", "green")
	oscar, _ := db.AddElement(awards, "movie-award", "green")
	if _, err := db.AddElementText(oscar, "name", "green", "Oscar"); err != nil {
		t.Fatal(err)
	}
	if err := db.Adopt(oscar, movie, "green"); err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestQueryThroughFacade(t *testing.T) {
	db := buildSmall(t)
	out, err := db.Query(`
for $m in document("db")/{red}descendant::movie[contains({red}child::name, "Eve")]
return createColor(black, <m-name>{ $m/{red}child::name }</m-name>)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Node == nil || out[0].Node.Name() != "m-name" {
		t.Fatalf("out = %+v", out)
	}
	if out[0].Value != "All About Eve" {
		t.Fatalf("value = %q", out[0].Value)
	}
}

func TestPathWithVars(t *testing.T) {
	db := buildSmall(t)
	movies, err := db.Path(`document("db")/{green}descendant::movie`, nil)
	if err != nil || len(movies) != 1 {
		t.Fatalf("movies = %v, %v", movies, err)
	}
	names, err := db.Path(`$m/{red}child::name`, map[string]*colorful.Node{"m": movies[0].Node})
	if err != nil || len(names) != 1 || names[0].Value != "All About Eve" {
		t.Fatalf("names = %v, %v", names, err)
	}
}

func TestUpdateThroughFacade(t *testing.T) {
	db := buildSmall(t)
	res, err := db.Update(`
for $m in document("db")/{green}descendant::movie
update $m { insert <votes>14</votes> }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != 1 || res.NodesTouched != 1 {
		t.Fatalf("res = %+v", res)
	}
	out, err := db.Path(`document("db")/{green}descendant::votes`, nil)
	if err != nil || len(out) != 1 || out[0].Value != "14" {
		t.Fatalf("votes = %v, %v", out, err)
	}
}

func TestXMLRoundTripThroughFacade(t *testing.T) {
	db := buildSmall(t)
	xml, err := db.XMLString(true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xml, "<mct") {
		t.Fatalf("xml = %.80s", xml)
	}
	back, err := colorful.UnmarshalXML(xml)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := colorful.Isomorphic(db, back); !ok {
		t.Fatalf("round trip: %s", why)
	}
	var sb strings.Builder
	if err := db.WriteXML(&sb, false); err != nil {
		t.Fatal(err)
	}
	if sb.Len() == 0 {
		t.Fatal("writer variant produced nothing")
	}
}

func TestLabel(t *testing.T) {
	db := buildSmall(t)
	movies := db.MustQuery(`document("db")/{red}descendant::movie`)
	lbl := colorful.Label(movies[0].Node)
	if !strings.HasPrefix(lbl, "GR") {
		t.Fatalf("label = %q", lbl)
	}
}

func TestFacadeTypesAreCoreTypes(t *testing.T) {
	// The aliases interoperate with internal values held by advanced users.
	var n *colorful.Node = (*core.Node)(nil)
	_ = n
	var c colorful.Color = core.Color("x")
	if c != "x" {
		t.Fatal("alias mismatch")
	}
}

func TestMustQueryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustQuery should panic on bad query")
		}
	}()
	buildSmall(t).MustQuery(`for $x in`)
}
