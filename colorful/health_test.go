package colorful_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"colorfulxml/colorful"
	"colorfulxml/internal/vfs"
)

// quickPolicy is a retry schedule that never really sleeps, so exhausting it
// under an injected outage is immediate.
func quickPolicy() *vfs.RetryPolicy {
	return &vfs.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		Budget:      time.Second,
		Seed:        7,
		Sleep:       func(time.Duration) {},
	}
}

// openFaulty opens a durable database on a fault-injecting filesystem.
func openFaulty(t *testing.T, probe time.Duration) (*colorful.DB, *vfs.FaultFS, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	ffs := vfs.NewFaultFS(vfs.OS, 42)
	db, err := colorful.OpenOptions(dir, colorful.Options{
		FS: ffs, Retry: quickPolicy(), ProbeInterval: probe,
	}, "red", "green")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, ffs, dir
}

func countNodes(t *testing.T, db *colorful.DB, q string) int {
	t.Helper()
	items, err := db.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return len(items)
}

// awaitHealth polls until the database reaches the wanted state.
func awaitHealth(t *testing.T, db *colorful.DB, want colorful.Health) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for db.Health() != want {
		if time.Now().After(deadline) {
			t.Fatalf("health = %v, want %v (timed out)", db.Health(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDegradeRollsBackAndServesReads(t *testing.T) {
	db, ffs, dir := openFaulty(t, time.Hour) // probe effectively disabled
	buildMovies(t, db)
	if n := countNodes(t, db, `document("db")/{red}descendant::movie`); n != 1 {
		t.Fatalf("baseline movie count = %d, want 1", n)
	}

	// Disk outage: every durability operation fails hard.
	ffs.SetStanding(vfs.Permanent(vfs.ErrIO))
	_, err := db.AddElement(db.Document(), "boom", "red")
	if err == nil {
		t.Fatal("mutation acknowledged during a disk outage")
	}
	if !errors.Is(err, colorful.ErrReadOnly) || !errors.Is(err, colorful.ErrDegraded) {
		t.Fatalf("failed commit error = %v, want ErrReadOnly wrapping ErrDegraded", err)
	}
	if colorful.IsRetryable(err) {
		t.Fatal("degraded-mode rejection must not be retryable")
	}
	if got := db.Health(); got != colorful.DegradedReadOnly {
		t.Fatalf("health = %v, want DegradedReadOnly", got)
	}

	// Reads keep serving the committed state; the rolled-back element is
	// invisible.
	if n := countNodes(t, db, `document("db")/{red}descendant::boom`); n != 0 {
		t.Fatalf("rolled-back element visible to reads (%d hits)", n)
	}
	if n := countNodes(t, db, `document("db")/{red}descendant::movie`); n != 1 {
		t.Fatalf("committed state lost in rollback: movie count = %d", n)
	}

	// Later mutations are refused up front, through every mutation surface.
	if _, err := db.AddElement(db.Document(), "x", "red"); !errors.Is(err, colorful.ErrReadOnly) {
		t.Fatalf("wrapper mutation during degraded mode: %v", err)
	}
	if _, err := db.Update(`
for $m in document("db")/{red}descendant::movie
update $m { insert <late>1</late> }`); !errors.Is(err, colorful.ErrReadOnly) {
		t.Fatalf("update during degraded mode: %v", err)
	}
	if err := db.AddDatabaseColor("blue"); !errors.Is(err, colorful.ErrReadOnly) {
		t.Fatalf("AddDatabaseColor during degraded mode: %v", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, colorful.ErrReadOnly) {
		t.Fatalf("Checkpoint during degraded mode: %v", err)
	}

	info := db.HealthInfo()
	if info.State != colorful.DegradedReadOnly || info.Degrades != 1 || info.Cause == "" {
		t.Fatalf("health info = %+v", info)
	}
	if db.DurabilityStats().Durable {
		t.Fatal("DurabilityStats reports Durable while degraded")
	}

	ffs.Clear()
	db.Close()

	// On disk: exactly the committed state, nothing of the rolled-back
	// mutation.
	db2 := reopen(t, dir, "red", "green")
	defer db2.Close()
	if n := countNodes(t, db2, `document("db")/{red}descendant::boom`); n != 0 {
		t.Fatalf("rolled-back element recovered from disk (%d hits)", n)
	}
	if n := countNodes(t, db2, `document("db")/{red}descendant::movie`); n != 1 {
		t.Fatalf("committed state lost on disk: movie count = %d", n)
	}
}

func TestHealRestoresWrites(t *testing.T) {
	db, ffs, dir := openFaulty(t, 2*time.Millisecond)
	buildMovies(t, db)

	ffs.SetStanding(vfs.Permanent(vfs.ErrIO))
	if _, err := db.AddElement(db.Document(), "boom", "red"); err == nil {
		t.Fatal("mutation acknowledged during a disk outage")
	}
	awaitHealth(t, db, colorful.DegradedReadOnly)

	// Outage ends; the probe notices and heals.
	ffs.Clear()
	awaitHealth(t, db, colorful.Healthy)
	if info := db.HealthInfo(); info.Heals != 1 || info.Cause != "" {
		t.Fatalf("health info after heal = %+v", info)
	}
	if !db.DurabilityStats().Durable {
		t.Fatal("healed database not durable")
	}

	// Writes work again and land on disk.
	if _, err := db.AddElementText(db.Document(), "post-heal", "red", "ok"); err != nil {
		t.Fatalf("mutation after heal: %v", err)
	}
	db.Close()

	db2 := reopen(t, dir, "red", "green")
	defer db2.Close()
	if n := countNodes(t, db2, `document("db")/{red}descendant::post-heal`); n != 1 {
		t.Fatalf("post-heal commit lost: %d hits", n)
	}
	if n := countNodes(t, db2, `document("db")/{red}descendant::boom`); n != 0 {
		t.Fatalf("rolled-back element recovered from disk (%d hits)", n)
	}
}

// TestSessionsAcrossHealthTransitions drives sessions and prepared
// statements through degrade and heal: reads keep working in every state,
// constructor queries are refused while degraded, and everything recovers
// after the heal. Concurrent readers run throughout (the -race interlock).
func TestSessionsAcrossHealthTransitions(t *testing.T) {
	db, ffs, _ := openFaulty(t, 2*time.Millisecond)
	buildMovies(t, db)

	s := db.Session()
	defer s.Close()
	stmt, err := s.Prepare(`document("db")/{red}descendant::movie`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()

	// Background readers across all transitions.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	readErr := make(chan error, 1)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if items, err := stmt.Query(); err != nil {
					select {
					case readErr <- fmt.Errorf("stmt during transition: %w", err):
					default:
					}
					return
				} else if len(items) != 1 {
					select {
					case readErr <- fmt.Errorf("stmt saw %d movies, want 1", len(items)):
					default:
					}
					return
				}
			}
		}()
	}

	ffs.SetStanding(vfs.Permanent(vfs.ErrIO))
	if _, err := db.Update(`
for $g in document("db")/{red}descendant::movie-genre
update $g { insert <fails>1</fails> }`); !errors.Is(err, colorful.ErrReadOnly) {
		t.Fatalf("update during outage: %v", err)
	}
	awaitHealth(t, db, colorful.DegradedReadOnly)

	// Session reads and prepared statements still serve while degraded; a
	// constructor query (which must mutate) is refused.
	if items, err := s.Query(`document("db")/{red}descendant::movie`); err != nil || len(items) != 1 {
		t.Fatalf("session read while degraded: %d items, %v", len(items), err)
	}
	if _, err := s.Query(`<orphan/>`); !errors.Is(err, colorful.ErrReadOnly) {
		t.Fatalf("constructor query while degraded: %v", err)
	}

	ffs.Clear()
	awaitHealth(t, db, colorful.Healthy)
	close(stop)
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}

	// The same session and statement outlive the transition.
	if _, err := db.AddElementText(db.Document(), "alive", "red", "yes"); err != nil {
		t.Fatalf("mutation after heal: %v", err)
	}
	if items, err := stmt.Query(); err != nil || len(items) != 1 {
		t.Fatalf("stmt after heal: %d items, %v", len(items), err)
	}
	if items, err := s.Query(`document("db")/{red}descendant::alive`); err != nil || len(items) != 1 {
		t.Fatalf("session read after heal: %d items, %v", len(items), err)
	}
}

// TestScrubberDetectsAndHeals runs the online scrubber against real bit-rot:
// a byte flipped in the live checkpoint is reported (counter, location) and
// healed by the fresh checkpoint the scrubber triggers, after which passes
// are clean again.
func TestScrubberDetectsAndHeals(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := colorful.OpenOptions(dir, colorful.Options{
		ProbeInterval: time.Millisecond,
		ScrubInterval: time.Millisecond,
	}, "red", "green")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	buildMovies(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	awaitInfo := func(what string, ok func(colorful.HealthInfo) bool) colorful.HealthInfo {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			info := db.HealthInfo()
			if ok(info) {
				return info
			}
			if time.Now().After(deadline) {
				t.Fatalf("scrubber never %s: %+v", what, info)
			}
			time.Sleep(time.Millisecond)
		}
	}
	awaitInfo("completed a pass", func(i colorful.HealthInfo) bool { return i.ScrubPasses > 0 })

	// Rot the live checkpoint.
	ckpts, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("no checkpoint on disk: %v", err)
	}
	data, err := os.ReadFile(ckpts[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(ckpts[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	info := awaitInfo("reported the corruption", func(i colorful.HealthInfo) bool { return i.ScrubCorruptions > 0 })
	if info.LastCorruption == "" {
		t.Fatalf("corruption counted but not located: %+v", info)
	}

	// The triggered checkpoint supersedes the damaged file; passes go clean
	// again (corruption count stops moving across a full pass).
	awaitInfo("healed", func(i colorful.HealthInfo) bool {
		base := db.HealthInfo()
		time.Sleep(10 * time.Millisecond)
		after := db.HealthInfo()
		return after.ScrubPasses > base.ScrubPasses && after.ScrubCorruptions == base.ScrubCorruptions
	})
	if db.Health() != colorful.Healthy {
		t.Fatalf("health after scrub heal = %v", db.Health())
	}
}

// TestDegradeSurvivesTransientOnly verifies the boundary between retry and
// degrade: a burst of transient faults shorter than the retry schedule is
// absorbed invisibly — the commit succeeds, the database stays healthy.
func TestDegradeSurvivesTransientOnly(t *testing.T) {
	db, ffs, dir := openFaulty(t, time.Hour)
	buildMovies(t, db)

	// Fail the next two durability operations with a retryable error.
	ffs.Schedule(ffs.Ops(), vfs.Fault{Err: vfs.ErrIO})
	ffs.Schedule(ffs.Ops()+1, vfs.Fault{Err: vfs.ErrIO})
	if _, err := db.AddElementText(db.Document(), "survivor", "red", "ok"); err != nil {
		t.Fatalf("commit with transient faults: %v", err)
	}
	if got := db.Health(); got != colorful.Healthy {
		t.Fatalf("health after absorbed faults = %v, want Healthy", got)
	}
	if ffs.Injected() == 0 {
		t.Fatal("no fault was actually injected")
	}
	db.Close()

	db2 := reopen(t, dir, "red", "green")
	defer db2.Close()
	if n := countNodes(t, db2, `document("db")/{red}descendant::survivor`); n != 1 {
		t.Fatalf("retried commit lost: %d hits", n)
	}
}

// TestDebugHealthEndpoint: /debug/health serves the state name and the
// degrade cause over HTTP, for a healthy and then a degraded database.
func TestDebugHealthEndpoint(t *testing.T) {
	db, ffs, _ := openFaulty(t, time.Hour)
	srv, err := db.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func() map[string]any {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + "/debug/health")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /debug/health = %d, want 200", resp.StatusCode)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	if m := get(); m["state"] != "healthy" {
		t.Fatalf(`state = %v, want "healthy" (%v)`, m["state"], m)
	}

	ffs.SetStanding(vfs.Permanent(vfs.ErrIO))
	if _, err := db.AddElement(db.Document(), "boom", "red"); err == nil {
		t.Fatal("commit under a standing outage succeeded")
	}
	m := get()
	if m["state"] != "degraded-readonly" {
		t.Fatalf(`state = %v, want "degraded-readonly" (%v)`, m["state"], m)
	}
	if cause, _ := m["cause"].(string); cause == "" {
		t.Fatalf("degraded health report carries no cause: %v", m)
	}
	if m["degrades"].(float64) != 1 {
		t.Fatalf("degrades = %v, want 1", m["degrades"])
	}
	ffs.Clear()
}
