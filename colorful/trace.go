package colorful

import (
	"context"
	"fmt"

	"colorfulxml/internal/engine"
	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/obs"
	"colorfulxml/internal/plan"
)

// TraceQuery runs a query like QueryContext but returns a trace: a span tree
// covering the query's phases (parse, admission, snapshot, compile, execute,
// map-results; or evaluate and wal.commit on the evaluator and constructor
// routes), with the execute span carrying one child span per physical
// operator — an operator's span nests under its parent operator's, and an
// Exchange's partition subtrees nest under the Exchange span even though
// they ran on worker goroutines. A plan-cache hit replaces the compile span
// with a "plancache" attribute on the root.
//
// Tracing is the expensive sibling of QueryContext (per-pull timing, plan
// tree attribution); use it for debugging and the /debug/trace endpoint,
// not on the hot path. The returned span tree is complete (every span
// ended) even when the query fails; the error is also recorded as a root
// span attribute.
func (d *DB) TraceQuery(ctx context.Context, src string) ([]Item, *obs.Span, error) {
	return d.auto.TraceQuery(ctx, src)
}

// TraceQuery is DB.TraceQuery through this session: the same single
// execution path as Session.QueryContext, with phase spans attached.
func (s *Session) TraceQuery(ctx context.Context, src string) ([]Item, *obs.Span, error) {
	root := obs.NewSpan("query")
	root.SetAttr("query", src)
	if err := s.begin(); err != nil {
		root.SetAttr("error", err.Error())
		root.End()
		return nil, root, err
	}
	defer s.end()
	sw := obs.Start()
	out, route, err := s.routed(ctx, src, root)
	root.SetAttr("rows", len(out))
	if err != nil {
		root.SetAttr("error", err.Error())
	}
	root.End()
	s.db.observeQuery(src, sw.ElapsedNanos(), len(out), route, err)
	s.observe(route, err)
	return out, root, err
}

// TraceText renders a query trace as an indented text tree with durations,
// the human-readable form of /debug/trace output.
func TraceText(root *obs.Span) string {
	if root == nil {
		return ""
	}
	return engine.TraceText(root)
}

// traceableQuery reports whether a query may run through TraceQuery on
// behalf of a read-only debug endpoint: constructor queries mutate the
// database and are rejected.
func traceableQuery(src string) error {
	e, err := mcxquery.ParseQuery(src)
	if err != nil {
		return err
	}
	if plan.HasConstructors(e) {
		return fmt.Errorf("colorful: query constructs nodes; tracing via the debug endpoint is limited to read-only queries")
	}
	return nil
}
