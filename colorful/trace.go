package colorful

import (
	"context"
	"errors"
	"fmt"

	"colorfulxml/internal/engine"
	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/obs"
	"colorfulxml/internal/pathexpr"
	"colorfulxml/internal/plan"
	"colorfulxml/internal/storage"
)

// TraceQuery runs a query like QueryContext but returns a trace: a span tree
// covering the query's phases (parse, snapshot, compile, execute,
// map-results; or evaluate and wal.commit on the evaluator and constructor
// routes), with the execute span carrying one child span per physical
// operator — an operator's span nests under its parent operator's, and an
// Exchange's partition subtrees nest under the Exchange span even though
// they ran on worker goroutines.
//
// Tracing is the expensive sibling of QueryContext (per-pull timing, plan
// tree attribution); use it for debugging and the /debug/trace endpoint,
// not on the hot path. The returned span tree is complete (every span
// ended) even when the query fails; the error is also recorded as a root
// span attribute.
func (d *DB) TraceQuery(ctx context.Context, src string) ([]Item, *obs.Span, error) {
	root := obs.NewSpan("query")
	root.SetAttr("query", src)
	sw := obs.Start()
	out, route, err := d.traceRouted(ctx, src, root)
	root.SetAttr("rows", len(out))
	if err != nil {
		root.SetAttr("error", err.Error())
	}
	root.End()
	d.observeQuery(src, sw.ElapsedNanos(), len(out), route, err)
	return out, root, err
}

// traceRouted is queryRouted with phase spans attached under root.
func (d *DB) traceRouted(ctx context.Context, src string, root *obs.Span) ([]Item, queryRoute, error) {
	ps := root.Child("parse")
	e, perr := mcxquery.ParseQuery(src)
	ps.End()
	readOnly := perr == nil && !plan.HasConstructors(e)
	if readOnly {
		out, cerr := d.traceCompiled(ctx, e, root)
		if cerr == nil {
			return out, routeCompiled, nil
		}
		if !errors.Is(cerr, plan.ErrUnsupported) {
			return nil, routeCompiled, cerr
		}
		root.SetAttr("fallback", cerr.Error())
	}
	if err := ctx.Err(); err != nil {
		return nil, routeEvaluator, err
	}
	if readOnly || perr != nil {
		d.mu.RLock()
		defer d.mu.RUnlock()
		es := root.Child("evaluate")
		out, err := d.evalItems(src)
		es.End()
		return out, routeEvaluator, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	m := d.beginCommit()
	es := root.Child("evaluate")
	out, err := d.evalItems(src)
	es.End()
	ws := root.Child("wal.commit")
	cerr := d.commitChanges(m)
	ws.End()
	if err == nil && cerr != nil {
		err = cerr
	}
	return out, routeConstructor, err
}

// traceCompiled is queryCompiled with snapshot/compile/execute/map-results
// spans; the execute span receives the per-operator subtree from
// engine.TraceExec.
func (d *DB) traceCompiled(ctx context.Context, e pathexpr.Expr, root *obs.Span) ([]Item, error) {
	ss := root.Child("snapshot")
	sp, err := d.snapshotForQuery()
	ss.End()
	if err != nil {
		return nil, err
	}
	cs := root.Child("compile")
	c, err := plan.Compile(e, d.planOptions(sp.st))
	cs.End()
	if err != nil {
		return nil, err
	}
	es := root.Child("execute")
	rows, _, err := engine.TraceExec(ctx, sp.st, c.Root, es)
	es.End()
	if err != nil {
		return nil, err
	}
	ms := root.Child("map-results")
	nodes := make([]storage.SNode, len(rows))
	for i, r := range rows {
		nodes[i] = r[c.OutCol]
	}
	out := d.mapNodes(nodes, c)
	ms.End()
	return out, nil
}

// TraceText renders a query trace as an indented text tree with durations,
// the human-readable form of /debug/trace output.
func TraceText(root *obs.Span) string {
	if root == nil {
		return ""
	}
	return engine.TraceText(root)
}

// traceableQuery reports whether a query may run through TraceQuery on
// behalf of a read-only debug endpoint: constructor queries mutate the
// database and are rejected.
func traceableQuery(src string) error {
	e, err := mcxquery.ParseQuery(src)
	if err != nil {
		return err
	}
	if plan.HasConstructors(e) {
		return fmt.Errorf("colorful: query constructs nodes; tracing via the debug endpoint is limited to read-only queries")
	}
	return nil
}
