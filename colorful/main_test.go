package colorful_test

import (
	"os"
	"testing"

	"colorfulxml/internal/lint/linttest"
)

// TestMain verifies no test leaves a goroutine behind: every DB the suite
// opens must stop its probe, scrub, and checkpoint workers on Close.
func TestMain(m *testing.M) {
	os.Exit(linttest.VerifyTestMain(m))
}
