package colorful

import (
	"context"
	"errors"
	"testing"
	"time"

	"colorfulxml/internal/fixtures"
)

// TestAdmissionRejectsWhenSaturated: with the gate saturated, a waiter whose
// queue wait exceeds the admission timeout fails with ErrOverloaded; once
// capacity frees up, acquisition succeeds again.
func TestAdmissionRejectsWhenSaturated(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := wrap(m.DB)
	db.SetMaxInflight(1)
	db.SetAdmissionTimeout(20 * time.Millisecond)

	release, err := db.adm.acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.adm.acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated acquire: err = %v, want ErrOverloaded", err)
	}
	if st := db.AdmissionStats(); st.Rejections != 1 || st.Inflight != 1 {
		t.Fatalf("stats = %+v, want 1 rejection, 1 inflight", st)
	}
	release()
	release2, err := db.adm.acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	release2()
	if st := db.AdmissionStats(); st.Inflight != 0 || st.QueueDepth != 0 {
		t.Fatalf("stats after drain = %+v, want idle gate", st)
	}
}

// TestAdmissionQueueAdmitsOnRelease: a queued waiter is admitted as soon as
// enough weight releases, well before its timeout.
func TestAdmissionQueueAdmitsOnRelease(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := wrap(m.DB)
	db.SetMaxInflight(2)
	db.SetAdmissionTimeout(5 * time.Second)

	release, err := db.adm.acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan error, 1)
	go func() {
		rel, err := db.adm.acquire(context.Background(), 1)
		if err == nil {
			rel()
		}
		admitted <- err
	}()
	// Wait until the waiter is queued, then free the gate.
	for db.AdmissionStats().QueueDepth == 0 {
		time.Sleep(time.Millisecond)
	}
	release()
	if err := <-admitted; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

// TestAdmissionContextCancel: a queued waiter whose context is canceled
// leaves the queue with the context's error, not ErrOverloaded.
func TestAdmissionContextCancel(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := wrap(m.DB)
	db.SetMaxInflight(1)
	db.SetAdmissionTimeout(5 * time.Second)

	release, err := db.adm.acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := db.adm.acquire(ctx, 1)
		done <- err
	}()
	for db.AdmissionStats().QueueDepth == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: err = %v, want context.Canceled", err)
	}
	if st := db.AdmissionStats(); st.QueueDepth != 0 {
		t.Fatalf("canceled waiter still queued: %+v", st)
	}
}

// TestQueryOverloadedEndToEnd: with the gate held at capacity, a real query
// through the session boundary reports ErrOverloaded (and counts as a query
// error), while raising the limit restores service.
func TestQueryOverloadedEndToEnd(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := wrap(m.DB)
	db.SetMaxInflight(1)
	db.SetAdmissionTimeout(10 * time.Millisecond)

	release, err := db.adm.acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(namesQuery); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("query under saturation: err = %v, want ErrOverloaded", err)
	}
	s := db.Session()
	defer s.Close()
	if _, err := s.Query(namesQuery); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("session query under saturation: err = %v, want ErrOverloaded", err)
	}
	release()
	if _, err := db.Query(namesQuery); err != nil {
		t.Fatalf("query after release: %v", err)
	}
	// Disabling the gate admits everything immediately.
	db.SetMaxInflight(0)
	if _, err := db.Query(namesQuery); err != nil {
		t.Fatalf("query with gate disabled: %v", err)
	}
}

// TestAdmissionDisabledByDefault: a fresh DB never queues or rejects.
func TestAdmissionDisabledByDefault(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := wrap(m.DB)
	for i := 0; i < 5; i++ {
		if _, err := db.Query(namesQuery); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.AdmissionStats(); st.MaxInflight != 0 || st.Rejections != 0 || st.QueueDepth != 0 {
		t.Fatalf("stats = %+v, want disabled idle gate", st)
	}
}
