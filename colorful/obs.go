package colorful

import (
	"context"
	"errors"
	"time"

	"colorfulxml/internal/obs"
)

// DB-level instruments: query traffic by route (compiled plan, evaluator
// fallback, constructor), end-to-end query latency, context cancellations,
// snapshot maintenance mirrored from MaintStats, and checkpoint activity.
// Every DB in the process feeds the same process-wide instruments; per-DB
// numbers remain available through MaintStats and DurabilityStats.
var (
	obsQueries       = obs.NewCounter("db_queries_total")
	obsCompiled      = obs.NewCounter("db_compiled_queries_total")
	obsCachedQueries = obs.NewCounter("db_cached_queries_total")
	obsFallbacks     = obs.NewCounter("db_evaluator_fallbacks_total")
	obsConstructors  = obs.NewCounter("db_constructor_queries_total")
	obsQueryErrors   = obs.NewCounter("db_query_errors_total")
	obsCancellations = obs.NewCounter("db_ctx_cancellations_total")
	obsUpdates       = obs.NewCounter("db_updates_total")
	obsSlowQueries   = obs.NewCounter("db_slow_queries_total")

	obsQueryNanos = obs.NewHistogram("db_query_nanos")

	obsAdmInflight   = obs.NewGauge("db_admission_inflight_weight")
	obsAdmQueueDepth = obs.NewGauge("db_admission_queue_depth")
	obsAdmRejections = obs.NewCounter("db_admission_rejections_total")
	obsAdmWaitNanos  = obs.NewHistogram("db_admission_wait_nanos")

	obsSnapApplies   = obs.NewCounter("db_snapshot_incremental_applies_total")
	obsSnapRebuilds  = obs.NewCounter("db_snapshot_full_rebuilds_total")
	obsSnapPublishes = obs.NewCounter("db_snapshot_publishes_total")

	obsCheckpoints     = obs.NewCounter("db_checkpoints_total")
	obsCheckpointNanos = obs.NewHistogram("db_checkpoint_nanos")

	// Fault-tolerance instruments (see health.go): the health gauge holds the
	// Health enum value (0 healthy, 1 degraded-readonly, 2 failed).
	obsCommitErrors      = obs.NewCounter("db_durability_commit_errors_total")
	obsDegrades          = obs.NewCounter("db_degrades_total")
	obsHeals             = obs.NewCounter("db_heals_total")
	obsMutationsRejected = obs.NewCounter("db_mutations_rejected_total")
	obsProbes            = obs.NewCounter("db_health_probes_total")
	obsHealthState       = obs.NewGauge("db_health_state")
)

// SlowQuery re-exports the slow-query log entry type.
type SlowQuery = obs.SlowQuery

// slowLogCapacity is the number of slow-query entries each DB retains.
const slowLogCapacity = 32

// queryRoute classifies how a query was served, for metrics and the slow log.
type queryRoute int8

const (
	// routeCompiled: the automatic plan compiler + streaming engine.
	routeCompiled queryRoute = iota
	// routeEvaluator: the reference evaluator, because the compiler rejected
	// the query (plan.ErrUnsupported) or it failed to parse.
	routeEvaluator
	// routeConstructor: the evaluator under the writer lock, because the
	// query constructs nodes.
	routeConstructor
	// routeCached: the compiled route served by a plan-cache (or prepared
	// statement) hit — parse/compile skipped.
	routeCached
	// routeRejected: refused by admission control before reaching any
	// execution route; only the error counters apply.
	routeRejected
)

// SetSlowQueryThreshold enables the slow-query log: queries taking at least
// threshold land in a ring buffer retaining the most recent offenders,
// each entry carrying the query text, latency, row count, and — for
// successful compiled queries — the physical plan annotated with
// per-operator execution statistics. A zero or negative threshold disables
// logging (the default). Safe to call at any time.
func (d *DB) SetSlowQueryThreshold(threshold time.Duration) {
	d.slowThreshold.Store(int64(threshold))
}

// SlowQueries returns the retained slow-query log entries, newest first.
func (d *DB) SlowQueries() []SlowQuery { return d.slow.Entries() }

// observeQuery records one finished query: traffic counters, the latency
// histogram, and (past the threshold) a slow-log entry. It runs with no DB
// locks held, so the plan re-analysis for the slow log is safe.
func (d *DB) observeQuery(src string, nanos int64, rows int, route queryRoute, err error) {
	obsQueries.Inc()
	obsQueryNanos.Observe(nanos)
	switch route {
	case routeCompiled:
		obsCompiled.Inc()
	case routeCached:
		obsCachedQueries.Inc()
	case routeEvaluator:
		obsFallbacks.Inc()
	case routeConstructor:
		obsConstructors.Inc()
	}
	if err != nil {
		obsQueryErrors.Inc()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			obsCancellations.Inc()
		}
	}
	thr := d.slowThreshold.Load()
	if thr <= 0 || nanos < thr {
		return
	}
	obsSlowQueries.Inc()
	e := SlowQuery{
		Query:     src,
		Millis:    float64(nanos) / 1e6,
		Rows:      rows,
		Fallback:  route != routeCompiled && route != routeCached,
		UnixNanos: time.Now().UnixNano(),
	}
	if err != nil {
		e.Err = err.Error()
	} else if route == routeCompiled || route == routeCached {
		// Capture the annotated physical plan by re-analyzing against the
		// current snapshot. Best-effort: a compile refused by a snapshot
		// rebuild in flight just leaves the plan empty.
		if text, perr := d.Explain(src); perr == nil {
			e.Plan = text
		}
	}
	d.slow.Add(e)
}
