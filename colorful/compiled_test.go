package colorful

import (
	"testing"

	"colorfulxml/internal/fixtures"
)

// TestQueryUsesCompiledPath: constructor-free queries run through the plan
// compiler over a cached store snapshot; the snapshot is rebuilt when the
// database changes and the results still agree with the evaluator.
func TestQueryUsesCompiledPath(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := wrap(m.DB)

	const q = `for $m in document("db")/{red}descendant::movie return $m/{green}child::votes`
	out, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if db.snap.Load() == nil {
		t.Fatal("constructor-free query should publish a store snapshot")
	}
	got := map[string]bool{}
	for _, it := range out {
		got[it.Value] = true
	}
	for _, want := range []string{"14", "11", "9"} {
		if !got[want] {
			t.Fatalf("missing vote count %s in %v", want, out)
		}
	}

	// Mutating the database must invalidate the snapshot on the next query.
	gen := db.snap.Load().gen
	if _, err := db.Query(`for $m in document("db")/{red}descendant::movie
	  return createColor(black, <m>{ $m/{red}child::name }</m>)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if db.snap.Load().gen == gen {
		t.Fatal("snapshot should be republished after the constructor query mutated the database")
	}

	// Constructor queries and unsupported constructs still answer via the
	// evaluator.
	out, err = db.Query(`for $m in document("db")/{red}descendant::movie
	  order by $m/{red}child::name return $m/{red}child::name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("evaluator fallback returned nothing")
	}
}
