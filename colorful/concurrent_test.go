package colorful

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"colorfulxml/internal/fixtures"
	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/pathexpr"
)

const votesQuery = `for $m in document("db")/{green}descendant::movie return $m/{green}child::votes`

// epochUpdate rewrites every green votes counter to the same epoch marker in
// ONE update statement, so any statement-boundary-consistent view shows all
// counters equal.
func epochUpdate(e int) string {
	return fmt.Sprintf(`
for $m in document("db")/{green}descendant::movie,
    $v in $m/{green}child::votes
update $m { replace $v with "epoch%d" }`, e)
}

// TestConcurrentReadersWriterStress runs 8 readers against a writer that
// flips all vote counters between epochs, one update statement per flip.
// Readers must always observe a consistent epoch — every votes value equal —
// whether the pre- or post-state of any in-flight update, never a torn mix.
// Run under -race this also checks the locking discipline of the facade.
func TestConcurrentReadersWriterStress(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := wrap(m.DB)
	if _, err := db.Update(epochUpdate(0)); err != nil {
		t.Fatal(err)
	}

	// A mix of Table 2-style read queries: compiled structural navigation,
	// cross-color transition, content predicate, and an order-by that runs on
	// the evaluator (exercising the shared-lock fallback path).
	sideQueries := []string{
		`document("db")/{red}descendant::movie[{red}child::name = "Duck Soup"]/{red}child::name`,
		`for $m in document("db")/{red}descendant::movie return $m/{green}child::votes`,
		`document("db")/{blue}descendant::movie-role/{red}parent::movie/{red}child::name`,
		`for $m in document("db")/{red}descendant::movie
		 order by $m/{red}child::name return $m/{red}child::name`,
	}

	const readers = 8
	const epochs = 30
	stop := make(chan struct{})
	errc := make(chan error, readers+1)
	var wg sync.WaitGroup

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				out, err := db.Query(votesQuery)
				if err != nil {
					errc <- fmt.Errorf("reader %d: %v", seed, err)
					return
				}
				if len(out) == 0 {
					errc <- fmt.Errorf("reader %d: votes query returned nothing", seed)
					return
				}
				for _, it := range out {
					if it.Value != out[0].Value {
						errc <- fmt.Errorf("reader %d: torn epoch: %q vs %q",
							seed, it.Value, out[0].Value)
						return
					}
				}
				if _, err := db.Query(sideQueries[(seed+n)%len(sideQueries)]); err != nil {
					errc <- fmt.Errorf("reader %d side query: %v", seed, err)
					return
				}
			}
		}(i)
	}

	go func() {
		defer close(stop)
		for e := 1; e <= epochs; e++ {
			if _, err := db.Update(epochUpdate(e)); err != nil {
				errc <- fmt.Errorf("writer: %v", err)
				return
			}
			// Interleave direct mutators through the locked wrappers too.
			if _, err := db.SetAttribute(m.Node("eve"), "epoch", fmt.Sprint(e)); err != nil {
				errc <- fmt.Errorf("writer attr: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// Final state: the last epoch everywhere.
	out, err := db.Query(votesQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range out {
		if want := fmt.Sprintf("epoch%d", epochs); it.Value != want {
			t.Fatalf("final votes = %q, want %q", it.Value, want)
		}
	}
}

// evaluatorSet answers a query on the raw evaluator and returns the distinct
// value set, the reference for differential checks.
func evaluatorSet(t *testing.T, db *DB, q string) map[string]bool {
	t.Helper()
	seq, err := mcxquery.NewEvaluator(db.Database).Query(q)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	set := map[string]bool{}
	for _, it := range seq {
		set[pathexpr.ItemString(it)] = true
	}
	return set
}

func querySet(t *testing.T, db *DB, q string) map[string]bool {
	t.Helper()
	out, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	for _, it := range out {
		set[it.Value] = true
	}
	return set
}

func setString(s map[string]bool) string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// TestIncrementalMaintenanceServesUpdates: point updates between compiled
// queries are folded into the snapshot by change-log replay — the full-load
// counter stays at the initial build — and after every update the maintained
// snapshot answers the workload queries exactly like the evaluator on the
// live database.
func TestIncrementalMaintenanceServesUpdates(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := wrap(m.DB)
	workload := []string{
		votesQuery,
		`document("db")/{red}descendant::movie[{red}child::name = "Duck Soup"]/{red}child::name`,
		`document("db")/{blue}descendant::movie-role/{red}parent::movie/{red}child::name`,
	}

	check := func(step string) {
		t.Helper()
		for _, q := range workload {
			got, want := querySet(t, db, q), evaluatorSet(t, db, q)
			if setString(got) != setString(want) {
				t.Fatalf("%s: query %s\nmaintained snapshot: %v\nevaluator: %v",
					step, q, setString(got), setString(want))
			}
		}
	}

	check("initial")
	if got := db.MaintStats(); got.FullRebuilds != 1 {
		t.Fatalf("initial build: %+v, want exactly one full rebuild", got)
	}

	updates := []string{
		`for $m in document("db")/{green}descendant::movie,
		     $v in $m/{green}child::votes
		 where $v < 10 update $m { replace $v with "90" }`,
		`for $a in document("db")/{blue}descendant::actor[{blue}child::name = "Bette Davis"]
		 update $a { insert <birthDate>1908-04-05</birthDate> }`,
		`for $y in document("db")/{green}descendant::year,
		     $m in $y/{green}child::movie[contains({green}child::name, "Eve")]
		 update $y { delete $m }`,
		epochUpdate(7),
	}
	for i, u := range updates {
		if _, err := db.Update(u); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		check(fmt.Sprintf("after update %d", i))
	}

	st := db.MaintStats()
	if st.FullRebuilds != 1 {
		t.Fatalf("maintenance fell back to full rebuilds: %+v", st)
	}
	if st.IncrementalApplies < uint64(len(updates)) {
		t.Fatalf("expected >= %d incremental applies: %+v", len(updates), st)
	}
}

// TestParallelExplainShowsExchange: on a database large enough to clear the
// default threshold, a parallel-enabled DB compiles descendant scans into a
// multi-way exchange, visible in Explain's analyzed plan.
func TestParallelExplainShowsExchange(t *testing.T) {
	db := New("red")
	root, err := db.AddElement(db.Document(), "lib", "red")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := db.AddElementText(root, "item", "red", fmt.Sprintf("v%d", i%7)); err != nil {
			t.Fatal(err)
		}
	}
	db.SetParallel(true)
	db.SetParallelWorkers(4) // independent of the host's core count
	text, err := db.Explain(`document("db")/{red}descendant::item`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "Exchange[") {
		t.Fatalf("explain lacks an exchange:\n%s", text)
	}
	if !strings.Contains(text, "part 2/") {
		t.Fatalf("explain lacks worker partitions:\n%s", text)
	}
	// The same query must return every item when executed.
	out, err := db.Query(`document("db")/{red}descendant::item`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2000 {
		t.Fatalf("parallel query returned %d items, want 2000", len(out))
	}
}
