package colorful

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"colorfulxml/internal/fixtures"
	"colorfulxml/internal/obs"
)

const redMoviesQuery = `document("db")/{red}descendant::movie`

// TestTraceQueryPhases: a compiled query's trace carries every phase span,
// and the execute span mirrors the physical plan as operator child spans.
func TestTraceQueryPhases(t *testing.T) {
	db := wrap(fixtures.NewMovieDB().DB)
	out, root, err := db.TraceQuery(context.Background(), redMoviesQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("traced query returned nothing")
	}
	for _, phase := range []string{"parse", "snapshot", "compile", "execute", "map-results"} {
		if root.Find(phase) == nil {
			t.Errorf("trace lacks a %q span:\n%s", phase, TraceText(root))
		}
	}
	ex := root.Find("execute")
	if ex == nil {
		t.Fatal("no execute span")
	}
	if len(ex.Children()) == 0 {
		t.Fatalf("execute span has no operator children:\n%s", TraceText(root))
	}
	// The root operator span reports the result cardinality.
	var rows string
	for _, a := range ex.Children()[0].Attrs() {
		if a.Key == "rows" {
			rows = a.Value
		}
	}
	if rows != fmt.Sprint(len(out)) {
		t.Fatalf("root operator span rows = %q, want %d", rows, len(out))
	}
	// The tree must export as JSON.
	if _, err := root.JSON(); err != nil {
		t.Fatal(err)
	}
}

// TestTraceSpanParentingAcrossExchange: with parallel execution forced, the
// partition operator subtrees executed on worker goroutines must appear as
// children of the Exchange span — worker stats are merged back when the
// exchange closes, so attribution survives the goroutine boundary.
func TestTraceSpanParentingAcrossExchange(t *testing.T) {
	db := New("red")
	root, err := db.AddElement(db.Document(), "lib", "red")
	if err != nil {
		t.Fatal(err)
	}
	const items = 500
	for i := 0; i < items; i++ {
		if _, err := db.AddElementText(root, "item", "red", fmt.Sprintf("v%d", i%7)); err != nil {
			t.Fatal(err)
		}
	}
	db.SetParallel(true)
	db.SetParallelWorkers(2)
	db.SetParallelThreshold(1)

	out, tr, err := db.TraceQuery(context.Background(), `document("db")/{red}descendant::item`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != items {
		t.Fatalf("parallel traced query returned %d items, want %d", len(out), items)
	}
	var exchange *obs.Span
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		if strings.HasPrefix(s.Name(), "Exchange[") {
			exchange = s
			return
		}
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(tr)
	if exchange == nil {
		t.Fatalf("no Exchange span in trace:\n%s", TraceText(tr))
	}
	kids := exchange.Children()
	if len(kids) != 2 {
		t.Fatalf("Exchange span has %d children, want 2 partition subtrees:\n%s",
			len(kids), TraceText(tr))
	}
	// Each partition subtree saw real rows, proving worker-side stats reached
	// the merged span tree.
	total := 0
	for _, k := range kids {
		for _, a := range k.Attrs() {
			if a.Key == "rows" {
				var n int
				fmt.Sscanf(a.Value, "%d", &n)
				total += n
			}
		}
	}
	if total != items {
		t.Fatalf("partition spans account for %d rows, want %d:\n%s", total, items, TraceText(tr))
	}
}

// TestSlowQueryLogCapture: past the threshold, compiled queries land in the
// slow log with their annotated plan; evaluator-served queries are marked as
// fallbacks with no plan.
func TestSlowQueryLogCapture(t *testing.T) {
	db := wrap(fixtures.NewMovieDB().DB)
	if got := db.SlowQueries(); len(got) != 0 {
		t.Fatalf("fresh DB has %d slow queries", len(got))
	}
	// Threshold zero (default) records nothing.
	if _, err := db.Query(redMoviesQuery); err != nil {
		t.Fatal(err)
	}
	if got := db.SlowQueries(); len(got) != 0 {
		t.Fatalf("disabled slow log captured %d entries", len(got))
	}

	db.SetSlowQueryThreshold(time.Nanosecond) // everything is slow
	if _, err := db.Query(redMoviesQuery); err != nil {
		t.Fatal(err)
	}
	evalQuery := `for $m in document("db")/{red}descendant::movie
	 order by $m/{red}child::name return $m/{red}child::name`
	if _, err := db.Query(evalQuery); err != nil {
		t.Fatal(err)
	}
	entries := db.SlowQueries()
	if len(entries) != 2 {
		t.Fatalf("slow log has %d entries, want 2: %+v", len(entries), entries)
	}
	// Newest first: the evaluator query, then the compiled one.
	if !entries[0].Fallback || entries[0].Plan != "" {
		t.Fatalf("evaluator entry not marked fallback/plan-free: %+v", entries[0])
	}
	compiled := entries[1]
	if compiled.Fallback {
		t.Fatalf("compiled entry marked fallback: %+v", compiled)
	}
	if !strings.Contains(compiled.Plan, "rows=") {
		t.Fatalf("compiled entry lacks an annotated plan: %+v", compiled)
	}
	if compiled.Query != redMoviesQuery || compiled.Rows == 0 || compiled.Millis < 0 {
		t.Fatalf("bad compiled slow-log entry: %+v", compiled)
	}
}

// TestServeDebugEndToEnd: /debug/metrics reflects a query run just before
// the request, /debug/slowlog serves the DB's ring, and /debug/trace runs a
// read-only query (rejecting constructors).
func TestServeDebugEndToEnd(t *testing.T) {
	db := wrap(fixtures.NewMovieDB().DB)
	db.SetSlowQueryThreshold(time.Nanosecond)
	srv, err := db.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	before := obs.Default.Snapshot().Counters["db_queries_total"]
	if _, err := db.Query(redMoviesQuery); err != nil {
		t.Fatal(err)
	}

	var snap obs.Snapshot
	getJSON(t, base+"/debug/metrics", &snap)
	if got := snap.Counters["db_queries_total"]; got != before+1 {
		t.Fatalf("db_queries_total = %d over the endpoint, want %d", got, before+1)
	}
	if _, ok := snap.Histograms["db_query_nanos"]; !ok {
		t.Fatal("metrics snapshot lacks db_query_nanos histogram")
	}

	// Text format renders sorted lines.
	text := getBody(t, base+"/debug/metrics?format=text")
	if !strings.Contains(text, "counter db_queries_total ") {
		t.Fatalf("text metrics lack db_queries_total:\n%s", text)
	}

	var slow []SlowQuery
	getJSON(t, base+"/debug/slowlog", &slow)
	if len(slow) == 0 || slow[0].Query != redMoviesQuery {
		t.Fatalf("slowlog endpoint returned %+v", slow)
	}

	// Tracing a read-only query returns the span tree.
	var span struct {
		Name     string            `json:"name"`
		Children []json.RawMessage `json:"children"`
	}
	getJSON(t, base+"/debug/trace?q="+url.QueryEscape(redMoviesQuery), &span)
	if span.Name != "query" || len(span.Children) == 0 {
		t.Fatalf("trace endpoint returned %+v", span)
	}

	// Constructor queries are rejected before execution.
	resp, err := http.Get(base + "/debug/trace?q=" + url.QueryEscape(
		`createColor(black, <x>{ document("db")/{red}descendant::movie }</x>)`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("constructor trace: status %d, want 400", resp.StatusCode)
	}

	// The pprof index answers.
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(getBody(t, url)), v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
