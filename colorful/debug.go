package colorful

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"colorfulxml/internal/obs"
)

// DebugServer is an opt-in HTTP introspection endpoint for one DB. It is
// meant for operators and tests, bound to localhost; nothing in the normal
// query path depends on it, and a DB never starts one on its own.
type DebugServer struct {
	db  *DB
	ln  net.Listener
	srv *http.Server
}

// debugTraceTimeout bounds a /debug/trace query execution so a pathological
// query cannot pin the endpoint.
const debugTraceTimeout = 30 * time.Second

// ServeDebug starts an HTTP debug endpoint on addr (use "127.0.0.1:0" to
// bind an ephemeral localhost port; Addr reports the bound address):
//
//	/debug/metrics        process-wide instrument snapshot as JSON
//	                      (?format=text for sorted plain-text lines)
//	/debug/slowlog        this DB's slow-query log, newest first (JSON)
//	/debug/trace?q=QUERY  run a read-only query with full tracing and
//	                      return the span tree (?format=text for a tree)
//	/debug/plancache      this DB's shared plan-cache counters (JSON)
//	/debug/health         this DB's serving state, degrade cause, and
//	                      scrubber activity (JSON; see HealthInfo)
//	/debug/pprof/...      the standard runtime profiles
//
// The server runs until Close. Queries issued through /debug/trace count in
// the DB's metrics like any other query but pay full tracing overhead.
func (d *DB) ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("colorful: debug endpoint: %w", err)
	}
	s := &DebugServer{db: d, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/plancache", s.handlePlanCache)
	mux.HandleFunc("/debug/health", s.handleHealth)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	//mctlint:ignore goroutineleak http.Server.Serve returns when DebugServer.Close calls srv.Close
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down, interrupting in-flight requests.
func (s *DebugServer) Close() error { return s.srv.Close() }

func (s *DebugServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := obs.Default.Snapshot()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap.WriteText(w) //nolint:errcheck // client gone mid-write
		return
	}
	writeJSON(w, snap)
}

func (s *DebugServer) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	entries := s.db.SlowQueries()
	if entries == nil {
		entries = []SlowQuery{}
	}
	writeJSON(w, entries)
}

func (s *DebugServer) handlePlanCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.db.PlanCacheStats())
}

func (s *DebugServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	info := s.db.HealthInfo()
	// A degraded or failed database still answers 200 — the endpoint reports
	// state, it is not a liveness probe.
	writeJSON(w, struct {
		State            string `json:"state"`
		Cause            string `json:"cause,omitempty"`
		Degrades         uint64 `json:"degrades"`
		Heals            uint64 `json:"heals"`
		ScrubPasses      uint64 `json:"scrub_passes"`
		ScrubFiles       uint64 `json:"scrub_files"`
		ScrubBytes       uint64 `json:"scrub_bytes"`
		ScrubCorruptions uint64 `json:"scrub_corruptions"`
		LastCorruption   string `json:"last_corruption,omitempty"`
	}{
		State:            info.State.String(),
		Cause:            info.Cause,
		Degrades:         info.Degrades,
		Heals:            info.Heals,
		ScrubPasses:      info.ScrubPasses,
		ScrubFiles:       info.ScrubFiles,
		ScrubBytes:       info.ScrubBytes,
		ScrubCorruptions: info.ScrubCorruptions,
		LastCorruption:   info.LastCorruption,
	})
}

func (s *DebugServer) handleTrace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter: /debug/trace?q=QUERY", http.StatusBadRequest)
		return
	}
	if err := traceableQuery(q); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), debugTraceTimeout)
	defer cancel()
	_, span, err := s.db.TraceQuery(ctx, q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, TraceText(span))
		return
	}
	writeJSON(w, span)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone mid-write
}
