// Package colorful is the public API of the multi-colored trees (MCT)
// system: an embeddable XML database in which nodes may participate in
// several hierarchies ("colors") at once, queried with MCXQuery — XQuery
// with color-annotated path steps — and exchanged as plain XML via the
// optimal serialization of the SIGMOD 2004 paper "Colorful XML: One
// Hierarchy Isn't Enough".
//
// Quick start:
//
//	db := colorful.New("red", "green")
//	genres, _ := db.AddElement(db.Document(), "movie-genres", "red")
//	comedy, _ := db.AddElementText(genres, "movie-genre", "red", "")
//	...
//	res, err := db.Query(`
//	  for $m in document("db")/{red}descendant::movie[contains({red}child::name, "Eve")]
//	  return createColor(black, <m-name>{ $m/{red}child::name }</m-name>)`)
//
// The facade wraps the internal packages: internal/core (data model),
// internal/mcxquery (query language), internal/update (update language) and
// internal/serialize (XML exchange).
package colorful

import (
	"fmt"
	"io"

	"colorfulxml/internal/core"
	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/pathexpr"
	"colorfulxml/internal/serialize"
	"colorfulxml/internal/update"
	"colorfulxml/internal/xmlenc"
)

// Re-exported model types. A Node belongs to one or more colored trees; its
// content and attributes are stored once.
type (
	// Color names one hierarchy of the database.
	Color = core.Color
	// Node is an MCT node (element, text, attribute, ...).
	Node = core.Node
	// NodeID is a node's stable identity.
	NodeID = core.NodeID
)

// DB is an MCT database with attached query and update processors.
type DB struct {
	*core.Database
	ev *mcxquery.Evaluator
	ex *update.Executor
}

// New creates an empty database with the given colors. Colors can also be
// added later with AddDatabaseColor, and createColor registers result colors
// automatically.
func New(colors ...Color) *DB {
	return wrap(core.NewDatabase(colors...))
}

func wrap(db *core.Database) *DB {
	return &DB{
		Database: db,
		ev:       mcxquery.NewEvaluator(db),
		ex:       update.NewExecutor(db),
	}
}

// Item is one result item: either a node (with the color it was selected
// under) or an atomic value.
type Item struct {
	Node  *Node
	Color Color
	Value string
}

// Query parses and evaluates an MCXQuery expression. Constructor results
// mutate the database (new nodes, new colors), per the paper's semantics.
func (d *DB) Query(src string) ([]Item, error) {
	seq, err := d.ev.Query(src)
	if err != nil {
		return nil, err
	}
	out := make([]Item, len(seq))
	for i, it := range seq {
		out[i] = Item{Node: it.Node, Color: it.Color, Value: pathexpr.ItemString(it)}
	}
	return out, nil
}

// Path evaluates a single colored path expression with optional variable
// bindings of nodes.
func (d *DB) Path(src string, vars map[string]*Node) ([]Item, error) {
	e, err := pathexpr.ParseString(src)
	if err != nil {
		return nil, err
	}
	env := &pathexpr.Env{DB: d.Database, Ext: d.ev.ExtEval()}
	if len(vars) > 0 {
		env.Vars = map[string]pathexpr.Sequence{}
		for k, n := range vars {
			colors := n.Colors()
			var c Color
			if len(colors) > 0 {
				c = colors[0]
			}
			env.Vars[k] = pathexpr.Sequence{pathexpr.NodeItem(n, c)}
		}
	}
	seq, err := pathexpr.Eval(env, e)
	if err != nil {
		return nil, err
	}
	out := make([]Item, len(seq))
	for i, it := range seq {
		out[i] = Item{Node: it.Node, Color: it.Color, Value: pathexpr.ItemString(it)}
	}
	return out, nil
}

// UpdateResult reports how many binding tuples matched and how many nodes an
// update touched.
type UpdateResult struct {
	Tuples       int
	NodesTouched int
}

// Update parses and applies an MCT update expression
// (for/where/update{insert,delete,replace,rename}).
func (d *DB) Update(src string) (UpdateResult, error) {
	res, err := d.ex.Apply(src)
	if err != nil {
		return UpdateResult{}, err
	}
	return UpdateResult{Tuples: res.Tuples, NodesTouched: res.NodesTouched}, nil
}

// WriteXML serializes the database as exchange XML (the paper's Section 5
// format); every element nests in its first (sorted-lowest) color. For
// cost-optimal nesting use internal/serialize.OptSerialize with a schema.
func (d *DB) WriteXML(w io.Writer, indent bool) error {
	doc, err := serialize.Serialize(d.Database, nil)
	if err != nil {
		return err
	}
	opt := xmlenc.WriteOptions{Declaration: true}
	if indent {
		opt.Indent = "  "
	}
	return xmlenc.Write(w, doc, opt)
}

// XMLString is WriteXML to a string.
func (d *DB) XMLString(indent bool) (string, error) {
	doc, err := serialize.Serialize(d.Database, nil)
	if err != nil {
		return "", err
	}
	opt := xmlenc.WriteOptions{Declaration: true}
	if indent {
		opt.Indent = "  "
	}
	return xmlenc.String(doc, opt), nil
}

// UnmarshalXML reconstructs a database from exchange XML produced by
// WriteXML.
func UnmarshalXML(src string) (*DB, error) {
	db, err := serialize.DeserializeString(src)
	if err != nil {
		return nil, err
	}
	return wrap(db), nil
}

// Isomorphic reports whether two databases are structurally identical per
// color (ignoring node identities); the mismatch description is empty when
// they are.
func Isomorphic(a, b *DB) (bool, string) {
	return serialize.Isomorphic(a.Database, b.Database)
}

// Label renders a node's paper-style identifier label (color initials plus
// node number, e.g. "RG012").
func Label(n *Node) string { return n.Label() }

// MustQuery is Query for examples and tests; it panics on error.
func (d *DB) MustQuery(src string) []Item {
	out, err := d.Query(src)
	if err != nil {
		panic(fmt.Sprintf("colorful: query failed: %v", err))
	}
	return out
}
