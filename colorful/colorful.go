// Package colorful is the public API of the multi-colored trees (MCT)
// system: an embeddable XML database in which nodes may participate in
// several hierarchies ("colors") at once, queried with MCXQuery — XQuery
// with color-annotated path steps — and exchanged as plain XML via the
// optimal serialization of the SIGMOD 2004 paper "Colorful XML: One
// Hierarchy Isn't Enough".
//
// Quick start:
//
//	db := colorful.New("red", "green")
//	genres, _ := db.AddElement(db.Document(), "movie-genres", "red")
//	comedy, _ := db.AddElementText(genres, "movie-genre", "red", "")
//	...
//	res, err := db.Query(`
//	  for $m in document("db")/{red}descendant::movie[contains({red}child::name, "Eve")]
//	  return createColor(black, <m-name>{ $m/{red}child::name }</m-name>)`)
//
// The facade wraps the internal packages: internal/core (data model),
// internal/mcxquery (query language), internal/update (update language) and
// internal/serialize (XML exchange).
package colorful

import (
	"fmt"
	"io"

	"colorfulxml/internal/core"
	"colorfulxml/internal/engine"
	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/pathexpr"
	"colorfulxml/internal/plan"
	"colorfulxml/internal/serialize"
	"colorfulxml/internal/storage"
	"colorfulxml/internal/update"
	"colorfulxml/internal/xmlenc"
)

// Re-exported model types. A Node belongs to one or more colored trees; its
// content and attributes are stored once.
type (
	// Color names one hierarchy of the database.
	Color = core.Color
	// Node is an MCT node (element, text, attribute, ...).
	Node = core.Node
	// NodeID is a node's stable identity.
	NodeID = core.NodeID
)

// DB is an MCT database with attached query and update processors.
type DB struct {
	*core.Database
	ev *mcxquery.Evaluator
	ex *update.Executor

	// Compiled query path: a Timber-style store snapshot of the database,
	// rebuilt lazily whenever the database generation moves.
	st    *storage.Store
	stGen uint64
}

// New creates an empty database with the given colors. Colors can also be
// added later with AddDatabaseColor, and createColor registers result colors
// automatically.
func New(colors ...Color) *DB {
	return wrap(core.NewDatabase(colors...))
}

func wrap(db *core.Database) *DB {
	return &DB{
		Database: db,
		ev:       mcxquery.NewEvaluator(db),
		ex:       update.NewExecutor(db),
	}
}

// Item is one result item: either a node (with the color it was selected
// under) or an atomic value.
type Item struct {
	Node  *Node
	Color Color
	Value string
}

// Query parses and evaluates an MCXQuery expression. Constructor results
// mutate the database (new nodes, new colors), per the paper's semantics.
//
// Constructor-free queries in the compilable subset run through the automatic
// plan compiler (internal/plan) and the streaming engine over an indexed
// snapshot of the database, returning distinct result nodes; everything else
// falls back to the reference tree-walking evaluator.
func (d *DB) Query(src string) ([]Item, error) {
	if e, err := mcxquery.ParseQuery(src); err == nil && !plan.HasConstructors(e) {
		if out, cerr := d.queryCompiled(e); cerr == nil {
			return out, nil
		}
	}
	seq, err := d.ev.Query(src)
	if err != nil {
		return nil, err
	}
	out := make([]Item, len(seq))
	for i, it := range seq {
		out[i] = Item{Node: it.Node, Color: it.Color, Value: pathexpr.ItemString(it)}
	}
	return out, nil
}

// queryCompiled lowers a parsed constructor-free query to a physical plan and
// executes it on the cached store snapshot. Any error (including
// plan.ErrUnsupported) makes the caller fall back to the evaluator.
func (d *DB) queryCompiled(e pathexpr.Expr) ([]Item, error) {
	if d.st == nil || d.stGen != d.Generation() {
		s, err := storage.Load(d.Database, 0)
		if err != nil {
			return nil, err
		}
		d.st, d.stGen = s, d.Generation()
	}
	c, err := plan.Compile(e, plan.Options{Catalog: plan.StoreCatalog{Store: d.st}})
	if err != nil {
		return nil, err
	}
	rows, _, err := engine.Exec(d.st, c.Root)
	if err != nil {
		return nil, err
	}
	out := make([]Item, 0, len(rows))
	for _, r := range rows {
		sn := r[c.OutCol]
		n := d.NodeByID(core.NodeID(sn.Elem))
		if n == nil {
			return nil, fmt.Errorf("colorful: compiled plan returned unknown node %d", sn.Elem)
		}
		if c.OutAttr != "" {
			// The output designator projects an attribute; nodes lacking it
			// contribute no item, matching the path semantics.
			a := n.Attribute(c.OutAttr)
			if a == nil {
				continue
			}
			out = append(out, Item{Node: a, Color: sn.Color, Value: a.Value()})
			continue
		}
		out = append(out, Item{Node: n, Color: sn.Color,
			Value: pathexpr.ItemString(pathexpr.NodeItem(n, sn.Color))})
	}
	return out, nil
}

// Path evaluates a single colored path expression with optional variable
// bindings of nodes.
func (d *DB) Path(src string, vars map[string]*Node) ([]Item, error) {
	e, err := pathexpr.ParseString(src)
	if err != nil {
		return nil, err
	}
	env := &pathexpr.Env{DB: d.Database, Ext: d.ev.ExtEval()}
	if len(vars) > 0 {
		env.Vars = map[string]pathexpr.Sequence{}
		for k, n := range vars {
			colors := n.Colors()
			var c Color
			if len(colors) > 0 {
				c = colors[0]
			}
			env.Vars[k] = pathexpr.Sequence{pathexpr.NodeItem(n, c)}
		}
	}
	seq, err := pathexpr.Eval(env, e)
	if err != nil {
		return nil, err
	}
	out := make([]Item, len(seq))
	for i, it := range seq {
		out[i] = Item{Node: it.Node, Color: it.Color, Value: pathexpr.ItemString(it)}
	}
	return out, nil
}

// Explain compiles a query with the automatic plan compiler, executes it with
// per-operator instrumentation, and returns the annotated physical plan tree
// (rows per operator, materialization, index and join counters, and the peak
// number of intermediate rows buffered — a fully streaming pipeline reports
// 0). Queries the compiler cannot lower report why they run on the evaluator
// instead.
func (d *DB) Explain(src string) (string, error) {
	e, err := mcxquery.ParseQuery(src)
	if err != nil {
		return "", err
	}
	if plan.HasConstructors(e) {
		return "", fmt.Errorf("colorful: query constructs nodes and runs on the evaluator; %w", plan.ErrUnsupported)
	}
	if d.st == nil || d.stGen != d.Generation() {
		s, err := storage.Load(d.Database, 0)
		if err != nil {
			return "", err
		}
		d.st, d.stGen = s, d.Generation()
	}
	c, err := plan.Compile(e, plan.Options{Catalog: plan.StoreCatalog{Store: d.st}})
	if err != nil {
		return "", err
	}
	an, err := engine.ExplainAnalyze(d.st, c.Root)
	if err != nil {
		return "", err
	}
	return an.Text, nil
}

// UpdateResult reports how many binding tuples matched and how many nodes an
// update touched.
type UpdateResult struct {
	Tuples       int
	NodesTouched int
}

// Update parses and applies an MCT update expression
// (for/where/update{insert,delete,replace,rename}).
func (d *DB) Update(src string) (UpdateResult, error) {
	res, err := d.ex.Apply(src)
	if err != nil {
		return UpdateResult{}, err
	}
	return UpdateResult{Tuples: res.Tuples, NodesTouched: res.NodesTouched}, nil
}

// WriteXML serializes the database as exchange XML (the paper's Section 5
// format); every element nests in its first (sorted-lowest) color. For
// cost-optimal nesting use internal/serialize.OptSerialize with a schema.
func (d *DB) WriteXML(w io.Writer, indent bool) error {
	doc, err := serialize.Serialize(d.Database, nil)
	if err != nil {
		return err
	}
	opt := xmlenc.WriteOptions{Declaration: true}
	if indent {
		opt.Indent = "  "
	}
	return xmlenc.Write(w, doc, opt)
}

// XMLString is WriteXML to a string.
func (d *DB) XMLString(indent bool) (string, error) {
	doc, err := serialize.Serialize(d.Database, nil)
	if err != nil {
		return "", err
	}
	opt := xmlenc.WriteOptions{Declaration: true}
	if indent {
		opt.Indent = "  "
	}
	return xmlenc.String(doc, opt), nil
}

// UnmarshalXML reconstructs a database from exchange XML produced by
// WriteXML.
func UnmarshalXML(src string) (*DB, error) {
	db, err := serialize.DeserializeString(src)
	if err != nil {
		return nil, err
	}
	return wrap(db), nil
}

// Isomorphic reports whether two databases are structurally identical per
// color (ignoring node identities); the mismatch description is empty when
// they are.
func Isomorphic(a, b *DB) (bool, string) {
	return serialize.Isomorphic(a.Database, b.Database)
}

// Label renders a node's paper-style identifier label (color initials plus
// node number, e.g. "RG012").
func Label(n *Node) string { return n.Label() }

// MustQuery is Query for examples and tests; it panics on error.
func (d *DB) MustQuery(src string) []Item {
	out, err := d.Query(src)
	if err != nil {
		panic(fmt.Sprintf("colorful: query failed: %v", err))
	}
	return out
}
