// Package colorful is the public API of the multi-colored trees (MCT)
// system: an embeddable XML database in which nodes may participate in
// several hierarchies ("colors") at once, queried with MCXQuery — XQuery
// with color-annotated path steps — and exchanged as plain XML via the
// optimal serialization of the SIGMOD 2004 paper "Colorful XML: One
// Hierarchy Isn't Enough".
//
// Quick start:
//
//	db := colorful.New("red", "green")
//	genres, _ := db.AddElement(db.Document(), "movie-genres", "red")
//	comedy, _ := db.AddElementText(genres, "movie-genre", "red", "")
//	...
//	res, err := db.Query(`
//	  for $m in document("db")/{red}descendant::movie[contains({red}child::name, "Eve")]
//	  return createColor(black, <m-name>{ $m/{red}child::name }</m-name>)`)
//
// The facade wraps the internal packages: internal/core (data model),
// internal/mcxquery (query language), internal/update (update language) and
// internal/serialize (XML exchange).
package colorful

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"colorfulxml/internal/core"
	"colorfulxml/internal/engine"
	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/obs"
	"colorfulxml/internal/pathexpr"
	"colorfulxml/internal/plan"
	"colorfulxml/internal/serialize"
	"colorfulxml/internal/storage"
	"colorfulxml/internal/update"
	"colorfulxml/internal/xmlenc"
)

// Re-exported model types. A Node belongs to one or more colored trees; its
// content and attributes are stored once.
type (
	// Color names one hierarchy of the database.
	Color = core.Color
	// Node is an MCT node (element, text, attribute, ...).
	Node = core.Node
	// NodeID is a node's stable identity.
	NodeID = core.NodeID
)

// DB is an MCT database with attached query and update processors.
//
// DB is safe for concurrent use by multiple goroutines. Queries in the
// compilable subset run lock-free against an immutable snapshot of the
// database; mutations (the DB-level wrappers in this package — Update,
// AddElement, SetText, ...) serialize behind a writer lock, and the next
// query publishes a fresh snapshot, usually by incremental change-log
// replay rather than a full rebuild (see MaintStats). Mixing DB wrappers
// with direct method calls on the embedded core.Database forfeits that
// safety: the embedded methods take no locks.
type DB struct {
	*core.Database
	ev *mcxquery.Evaluator
	ex *update.Executor

	// coreRef aliases the embedded Database pointer for the lock-free
	// snapshot fast paths: a degraded-mode rollback swaps the core instance
	// under the writer lock, and lock-free readers must observe the swap
	// atomically (see health.go).
	coreRef atomic.Pointer[core.Database]

	// mu guards the core database: mutators hold it exclusively, evaluator
	// runs and result mapping hold it shared. Compiled execution holds no
	// lock at all — it touches only an immutable snapshot.
	mu sync.RWMutex
	// maintMu serializes snapshot maintenance (see currentSnapshot).
	maintMu sync.Mutex
	// snap is the published store snapshot for lock-free readers.
	snap atomic.Pointer[snapshot]

	incrementalApplies atomic.Uint64
	fullRebuilds       atomic.Uint64
	publishes          atomic.Uint64

	parallel          atomic.Bool
	parallelWorkers   atomic.Int64
	parallelThreshold atomic.Int64

	// Session kernel (see session.go): the shared compiled-plan cache, the
	// admission gate, the internal auto-session behind the DB-level query
	// entry points, and the registry of user sessions DB.Close drains.
	planCache  *plan.Cache
	adm        admission
	auto       *Session
	sessMu     sync.Mutex
	sessions   map[*Session]struct{}
	sessClosed bool

	// Slow-query log (see obs.go): threshold in nanoseconds, 0 = disabled.
	slow          *obs.SlowLog
	slowThreshold atomic.Int64

	// Durability (nil/zero for in-memory databases; see durable.go). dur and
	// durErr are guarded by mu; durErr is the terminal closed/failed marker.
	dur         *storage.Durable
	durOpts     Options
	durErr      error
	recovery    storage.RecoveryStats
	checkpoints atomic.Uint64
	ckptBusy    atomic.Bool
	ckptWG      sync.WaitGroup
	ckptErrMu   sync.Mutex
	ckptErr     error

	// Health state machine (see health.go): healthy databases accept
	// mutations; a durability failure rolls the mutation back and degrades
	// to read-only serving until the background probe heals the disk.
	health       atomic.Int32
	causeMu      sync.Mutex
	degradeCause error
	degrades     atomic.Uint64
	heals        atomic.Uint64
	stopCh       chan struct{} // created by Open; closed once by Close
	stopOnce     sync.Once

	// Scrubber bookkeeping (see health.go).
	scrubPasses      atomic.Uint64
	scrubFiles       atomic.Uint64
	scrubBytes       atomic.Uint64
	scrubCorruptions atomic.Uint64
	scrubLastMu      sync.Mutex
	scrubLast        string
}

// New creates an empty database with the given colors. Colors can also be
// added later with AddDatabaseColor, and createColor registers result colors
// automatically.
func New(colors ...Color) *DB {
	return wrap(core.NewDatabase(colors...))
}

func wrap(db *core.Database) *DB {
	d := &DB{
		Database:  db,
		ev:        mcxquery.NewEvaluator(db),
		ex:        update.NewExecutor(db),
		slow:      obs.NewSlowLog(slowLogCapacity),
		planCache: plan.NewCache(0),
		sessions:  map[*Session]struct{}{},
	}
	d.coreRef.Store(db)
	d.auto = newSession(d, true)
	return d
}

// Item is one result item: either a node (with the color it was selected
// under) or an atomic value.
type Item struct {
	Node  *Node
	Color Color
	Value string
}

// Query parses and evaluates an MCXQuery expression. Constructor results
// mutate the database (new nodes, new colors), per the paper's semantics.
//
// Constructor-free queries in the compilable subset run through the automatic
// plan compiler (internal/plan) and the streaming engine over an immutable
// indexed snapshot of the database — lock-free, so any number of such
// queries run concurrently with each other and with at most brief contact
// with writers. Only queries the compiler rejects (plan.ErrUnsupported)
// fall back to the reference tree-walking evaluator; genuine execution
// errors surface to the caller.
func (d *DB) Query(src string) ([]Item, error) {
	return d.QueryContext(context.Background(), src)
}

// QueryContext is Query under a context deadline or cancellation: compiled
// executions poll ctx once per operator batch (at most BatchSize rows of
// work between checks) and abort with the context's error; the evaluator
// path honors the context at entry. A canceled read-only query leaves the
// database untouched.
//
// DB-level queries execute through an internal session that is never
// closed, so they remain available after Close (reads stay in memory);
// Session and Stmt (see session.go, stmt.go) expose the same path with
// per-session defaults and prepared plans.
func (d *DB) QueryContext(ctx context.Context, src string) ([]Item, error) {
	return d.auto.QueryContext(ctx, src)
}

// evalItems runs the reference evaluator under a lock the caller holds.
func (d *DB) evalItems(src string) ([]Item, error) {
	seq, err := d.ev.Query(src)
	if err != nil {
		return nil, err
	}
	out := make([]Item, len(seq))
	for i, it := range seq {
		out[i] = Item{Node: it.Node, Color: it.Color, Value: pathexpr.ItemString(it)}
	}
	return out, nil
}

// mapNodes maps output-column structural nodes back to live core nodes under
// one shared lock, so all returned values come from a single
// statement-boundary state even when writers run concurrently. Nodes deleted
// since the snapshot was taken contribute no item.
func (d *DB) mapNodes(nodes []storage.SNode, c *plan.Compiled) []Item {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Item, 0, len(nodes))
	for _, sn := range nodes {
		n := d.Database.NodeByID(core.NodeID(sn.Elem))
		if n == nil {
			continue
		}
		if c.OutAttr != "" {
			// The output designator projects an attribute; nodes lacking it
			// contribute no item, matching the path semantics.
			a := n.Attribute(c.OutAttr)
			if a == nil {
				continue
			}
			out = append(out, Item{Node: a, Color: sn.Color, Value: a.Value()})
			continue
		}
		out = append(out, Item{Node: n, Color: sn.Color,
			Value: pathexpr.ItemString(pathexpr.NodeItem(n, sn.Color))})
	}
	return out
}

// Path evaluates a single colored path expression with optional variable
// bindings of nodes.
func (d *DB) Path(src string, vars map[string]*Node) ([]Item, error) {
	e, err := pathexpr.ParseString(src)
	if err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	env := &pathexpr.Env{DB: d.Database, Ext: d.ev.ExtEval()}
	if len(vars) > 0 {
		env.Vars = map[string]pathexpr.Sequence{}
		for k, n := range vars {
			colors := n.Colors()
			var c Color
			if len(colors) > 0 {
				c = colors[0]
			}
			env.Vars[k] = pathexpr.Sequence{pathexpr.NodeItem(n, c)}
		}
	}
	seq, err := pathexpr.Eval(env, e)
	if err != nil {
		return nil, err
	}
	out := make([]Item, len(seq))
	for i, it := range seq {
		out[i] = Item{Node: it.Node, Color: it.Color, Value: pathexpr.ItemString(it)}
	}
	return out, nil
}

// Explain compiles a query with the automatic plan compiler, executes it with
// per-operator instrumentation, and returns the annotated physical plan tree
// (rows and batches per operator, materialization, index and join counters,
// and the peak number of live intermediate rows — a fully streaming pipeline
// reports only its in-flight batches, at most pipeline depth × BatchSize).
// Queries the compiler cannot lower report why they run on the evaluator
// instead.
func (d *DB) Explain(src string) (string, error) {
	e, err := mcxquery.ParseQuery(src)
	if err != nil {
		return "", err
	}
	if plan.HasConstructors(e) {
		return "", fmt.Errorf("colorful: query constructs nodes and runs on the evaluator; %w", plan.ErrUnsupported)
	}
	sp, err := d.currentSnapshot()
	if err != nil {
		return "", err
	}
	c, err := plan.Compile(e, d.planOptions(sp.st))
	if err != nil {
		return "", err
	}
	an, err := engine.ExplainAnalyze(sp.st, c.Root)
	if err != nil {
		return "", err
	}
	return an.Text, nil
}

// UpdateResult reports how many binding tuples matched and how many nodes an
// update touched.
type UpdateResult struct {
	Tuples       int
	NodesTouched int
}

// Update parses and applies an MCT update expression
// (for/where/update{insert,delete,replace,rename}). Updates serialize
// behind the writer lock; after the update commits, the snapshot is
// refreshed eagerly so the maintenance cost is paid by the writer, not by
// the next reader.
func (d *DB) Update(src string) (UpdateResult, error) {
	obsUpdates.Inc()
	d.mu.Lock()
	m, err := d.beginCommit()
	if err != nil {
		d.mu.Unlock()
		return UpdateResult{}, err
	}
	res, err := d.ex.Apply(src)
	if cerr := d.commitChanges(m); err == nil && cerr != nil {
		err = cerr
	}
	d.mu.Unlock()
	if err != nil {
		return UpdateResult{}, err
	}
	// A refresh failure is not an update failure: the mutation is committed,
	// and the next query retries the rebuild.
	_ = d.Refresh()
	return UpdateResult{Tuples: res.Tuples, NodesTouched: res.NodesTouched}, nil
}

// WriteXML serializes the database as exchange XML (the paper's Section 5
// format); every element nests in its first (sorted-lowest) color. For
// cost-optimal nesting use internal/serialize.OptSerialize with a schema.
func (d *DB) WriteXML(w io.Writer, indent bool) error {
	d.mu.RLock()
	doc, err := serialize.Serialize(d.Database, nil)
	d.mu.RUnlock()
	if err != nil {
		return err
	}
	opt := xmlenc.WriteOptions{Declaration: true}
	if indent {
		opt.Indent = "  "
	}
	return xmlenc.Write(w, doc, opt)
}

// XMLString is WriteXML to a string.
func (d *DB) XMLString(indent bool) (string, error) {
	d.mu.RLock()
	doc, err := serialize.Serialize(d.Database, nil)
	d.mu.RUnlock()
	if err != nil {
		return "", err
	}
	opt := xmlenc.WriteOptions{Declaration: true}
	if indent {
		opt.Indent = "  "
	}
	return xmlenc.String(doc, opt), nil
}

// UnmarshalXML reconstructs a database from exchange XML produced by
// WriteXML.
func UnmarshalXML(src string) (*DB, error) {
	db, err := serialize.DeserializeString(src)
	if err != nil {
		return nil, err
	}
	return wrap(db), nil
}

// Isomorphic reports whether two databases are structurally identical per
// color (ignoring node identities); the mismatch description is empty when
// they are.
func Isomorphic(a, b *DB) (bool, string) {
	return serialize.Isomorphic(a.Database, b.Database)
}

// Label renders a node's paper-style identifier label (color initials plus
// node number, e.g. "RG012").
func Label(n *Node) string { return n.Label() }

// MustQuery is Query for examples and tests; it panics on error.
func (d *DB) MustQuery(src string) []Item {
	out, err := d.Query(src)
	if err != nil {
		panic(fmt.Sprintf("colorful: query failed: %v", err))
	}
	return out
}
