package colorful

import "colorfulxml/internal/core"

// This file shadows the embedded core.Database methods with locked
// wrappers, making the DB facade safe for concurrent use: mutators take the
// writer lock (serializing with each other, with constructor queries and
// with snapshot maintenance), readers take the shared lock. The embedded
// methods themselves stay available via d.Database for single-goroutine
// code that wants to skip the locking, at its own risk.
//
// Every mutator is also a durable commit scope: for databases created by
// Open, beginCommit admits the mutation (refusing up front — with
// ErrReadOnly, ErrFailed or ErrClosed — when the database cannot commit)
// and commitChanges appends the change-log entries the mutation produced to
// the write-ahead log before the wrapper returns, so an acknowledged
// mutation survives a crash. A durability failure that exhausts the storage
// layer's retries rolls the mutation back and degrades the database to
// read-only serving (see health.go); the failing wrapper reports the
// rolled-back commit through its error.
//
// Mutations are NOT applied to the published query snapshot here — they
// land in the core database and its change log, and the next query (or an
// explicit Refresh) publishes a fresh snapshot incrementally.

// --- mutators -------------------------------------------------------------

// AddElement creates an element and appends it under parent in color c.
func (d *DB) AddElement(parent *Node, name string, c Color) (*Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return nil, err
	}
	parent = d.resolve(parent)
	n, err := d.Database.AddElement(parent, name, c)
	if cerr := d.commitChanges(m); err == nil && cerr != nil {
		err = cerr
	}
	return n, err
}

// AddElementText is AddElement plus a text child.
func (d *DB) AddElementText(parent *Node, name string, c Color, text string) (*Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return nil, err
	}
	parent = d.resolve(parent)
	n, err := d.Database.AddElementText(parent, name, c, text)
	if cerr := d.commitChanges(m); err == nil && cerr != nil {
		err = cerr
	}
	return n, err
}

// Adopt gives an existing node an additional parent in color c.
func (d *DB) Adopt(parent, n *Node, c Color) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return err
	}
	parent, n = d.resolve(parent), d.resolve(n)
	err = d.Database.Adopt(parent, n, c)
	if cerr := d.commitChanges(m); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// SetText replaces an element's text content.
func (d *DB) SetText(elem *Node, value string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return err
	}
	elem = d.resolve(elem)
	err = d.Database.SetText(elem, value)
	if cerr := d.commitChanges(m); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// CopySubtree deep-copies a node's subtree in color c.
func (d *DB) CopySubtree(n *Node, c Color) (*Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return nil, err
	}
	n = d.resolve(n)
	cp, err := d.Database.CopySubtree(n, c)
	if cerr := d.commitChanges(m); err == nil && cerr != nil {
		err = cerr
	}
	return cp, err
}

// AddDatabaseColor registers a new color. The error is the commit's: a
// degraded or closed database refuses the registration.
func (d *DB) AddDatabaseColor(c Color) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return err
	}
	d.Database.AddDatabaseColor(c)
	return d.commitChanges(m)
}

// NewElement creates a detached element in color c. Detached nodes are not
// materialized in the store (and so not made durable) until attached.
func (d *DB) NewElement(name string, c Color) (*Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Database.NewElement(name, c)
}

// MustElement is NewElement panicking on error.
func (d *DB) MustElement(name string, c Color) *Node {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Database.MustElement(name, c)
}

// NewComment creates a detached comment node.
func (d *DB) NewComment(value string, c Color) (*Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Database.NewComment(value, c)
}

// NewPI creates a detached processing-instruction node.
func (d *DB) NewPI(target, value string, c Color) (*Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Database.NewPI(target, value, c)
}

// SetAttribute sets (or replaces) an attribute on an element.
func (d *DB) SetAttribute(elem *Node, name, value string) (*Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return nil, err
	}
	elem = d.resolve(elem)
	a, err := d.Database.SetAttribute(elem, name, value)
	if cerr := d.commitChanges(m); err == nil && cerr != nil {
		err = cerr
	}
	return a, err
}

// Rename changes a node's name.
func (d *DB) Rename(n *Node, name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return err
	}
	n = d.resolve(n)
	err = d.Database.Rename(n, name)
	if cerr := d.commitChanges(m); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// RemoveAttribute removes an attribute if present. The error is the
// commit's: a degraded or closed database refuses the removal.
func (d *DB) RemoveAttribute(elem *Node, name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return err
	}
	elem = d.resolve(elem)
	d.Database.RemoveAttribute(elem, name)
	return d.commitChanges(m)
}

// AppendText appends a text node to an element.
func (d *DB) AppendText(elem *Node, value string) (*Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return nil, err
	}
	elem = d.resolve(elem)
	t, err := d.Database.AppendText(elem, value)
	if cerr := d.commitChanges(m); err == nil && cerr != nil {
		err = cerr
	}
	return t, err
}

// AddColor adds a node to color c (keeping its position rules).
func (d *DB) AddColor(n *Node, c Color) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return err
	}
	n = d.resolve(n)
	err = d.Database.AddColor(n, c)
	if cerr := d.commitChanges(m); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// RemoveColor removes a node (and its subtree participation) from color c.
func (d *DB) RemoveColor(n *Node, c Color) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return err
	}
	n = d.resolve(n)
	err = d.Database.RemoveColor(n, c)
	if cerr := d.commitChanges(m); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// Append attaches child as parent's last child in color c.
func (d *DB) Append(parent, child *Node, c Color) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return err
	}
	parent, child = d.resolve(parent), d.resolve(child)
	err = d.Database.Append(parent, child, c)
	if cerr := d.commitChanges(m); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// InsertBefore attaches child before ref under parent in color c.
func (d *DB) InsertBefore(parent, child, ref *Node, c Color) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return err
	}
	parent, child, ref = d.resolve(parent), d.resolve(child), d.resolve(ref)
	err = d.Database.InsertBefore(parent, child, ref, c)
	if cerr := d.commitChanges(m); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// Detach removes child from its parent in color c.
func (d *DB) Detach(child *Node, c Color) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return err
	}
	child = d.resolve(child)
	err = d.Database.Detach(child, c)
	if cerr := d.commitChanges(m); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// Delete removes a node from the database entirely.
func (d *DB) Delete(n *Node) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return err
	}
	n = d.resolve(n)
	err = d.Database.Delete(n)
	if cerr := d.commitChanges(m); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// DeleteSubtree deletes a node's subtree in color c.
func (d *DB) DeleteSubtree(n *Node, c Color) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.beginCommit()
	if err != nil {
		return err
	}
	n = d.resolve(n)
	err = d.Database.DeleteSubtree(n, c)
	if cerr := d.commitChanges(m); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// --- readers --------------------------------------------------------------

// NodeByID resolves a node by its stable identity.
func (d *DB) NodeByID(id NodeID) *Node {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.Database.NodeByID(id)
}

// Colors lists the database's colors.
func (d *DB) Colors() []Color {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.Database.Colors()
}

// HasColor reports whether a color is registered.
func (d *DB) HasColor(c Color) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.Database.HasColor(c)
}

// NumNodes counts the database's nodes.
func (d *DB) NumNodes() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.Database.NumNodes()
}

// TreeNodes returns the nodes of one colored tree in document order.
func (d *DB) TreeNodes(c Color) []*Node {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.Database.TreeNodes(c)
}

// LocalOrder returns a node's position in color c's document order.
func (d *DB) LocalOrder(n *Node, c Color) (int, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.Database.LocalOrder(n, c)
}

// CompareLocal orders two nodes by color c's document order.
func (d *DB) CompareLocal(a, b *Node, c Color) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.Database.CompareLocal(a, b, c)
}

// SortLocal sorts nodes in color c's document order.
func (d *DB) SortLocal(nodes []*Node, c Color) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.Database.SortLocal(nodes, c)
}

// Validate checks the MCT invariants.
func (d *DB) Validate() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.Database.Validate()
}

// ComputeStats gathers the Table 1-style database statistics.
func (d *DB) ComputeStats() core.Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.Database.ComputeStats()
}
