package colorful

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"colorfulxml/internal/fixtures"
	"colorfulxml/internal/plan"
)

// sessionSet answers a query through a session and returns the distinct
// value set, for differential comparison against evaluatorSet.
func sessionSet(t *testing.T, s *Session, q string) map[string]bool {
	t.Helper()
	out, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	for _, it := range out {
		set[it.Value] = true
	}
	return set
}

const namesQuery = `document("db")/{red}descendant::movie/{red}child::name`

// TestSessionCacheHitsAndRoute: the second identical query through a session
// is served by the plan cache (cached route, cache hit), with results
// identical to the cold compile and to the evaluator.
func TestSessionCacheHitsAndRoute(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := wrap(m.DB)
	s := db.Session()
	defer s.Close()

	want := evaluatorSet(t, db, namesQuery)
	before := db.PlanCacheStats()
	for i := 0; i < 3; i++ {
		out, err := s.QueryContext(context.Background(), namesQuery)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, it := range out {
			got[it.Value] = true
		}
		if setString(got) != setString(want) {
			t.Fatalf("run %d: got %s, want %s", i, setString(got), setString(want))
		}
	}
	st := s.Stats()
	if st.Queries != 3 || st.Compiled != 1 || st.CacheHits != 2 {
		t.Fatalf("session stats = %+v, want 3 queries / 1 compiled / 2 cache hits", st)
	}
	cs := db.PlanCacheStats()
	if cs.Hits-before.Hits != 2 {
		t.Fatalf("cache hits = %d, want 2 (stats %+v)", cs.Hits-before.Hits, cs)
	}
}

// TestSessionPlanCacheOptOut: a session opted out via SetPlanCache neither
// probes nor populates the shared cache.
func TestSessionPlanCacheOptOut(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := wrap(m.DB)
	s := db.Session()
	defer s.Close()
	s.SetPlanCache(false)

	before := db.PlanCacheStats()
	for i := 0; i < 3; i++ {
		if _, err := s.Query(namesQuery); err != nil {
			t.Fatal(err)
		}
	}
	after := db.PlanCacheStats()
	if after.Hits != before.Hits || after.Misses != before.Misses || after.Size != before.Size {
		t.Fatalf("opted-out session touched the cache: before %+v after %+v", before, after)
	}
	if st := s.Stats(); st.CacheHits != 0 || st.Compiled != 3 {
		t.Fatalf("session stats = %+v, want 3 fresh compiles", st)
	}
}

// TestEvaluatorFallbackBypassesCache: a query the compiler rejects routes to
// the evaluator without ever probing or populating the plan cache, and the
// route counters report it as a fallback, not a cached query.
func TestEvaluatorFallbackBypassesCache(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := wrap(m.DB)
	s := db.Session()
	defer s.Close()

	// order by runs on the evaluator (not in the compilable subset).
	fallback := `for $m in document("db")/{red}descendant::movie
	 order by $m/{red}child::name return $m/{red}child::name`
	before := db.PlanCacheStats()
	for i := 0; i < 2; i++ {
		if _, err := s.Query(fallback); err != nil {
			t.Fatal(err)
		}
	}
	after := db.PlanCacheStats()
	if after.Size != before.Size || after.Hits != before.Hits {
		t.Fatalf("fallback query touched cache contents: before %+v after %+v", before, after)
	}
	if st := s.Stats(); st.Fallbacks != 2 || st.CacheHits != 0 {
		t.Fatalf("session stats = %+v, want 2 fallbacks, 0 cache hits", st)
	}
}

// TestStmtAfterSessionClose is the ErrSessionClosed regression test: a
// statement races its executions against Session.Close; every execution
// either completes or reports ErrSessionClosed, and after Close completes
// all further executions report ErrSessionClosed. Run with -race.
func TestStmtAfterSessionClose(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := wrap(m.DB)
	s := db.Session()
	stmt, err := s.Prepare(namesQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := stmt.Query(); err != nil {
					if !errors.Is(err, ErrSessionClosed) {
						errc <- err
					}
					return
				}
			}
		}()
	}
	s.Close()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("statement failed with a non-close error during drain: %v", err)
	}

	if _, err := stmt.Query(); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("stmt after session close: err = %v, want ErrSessionClosed", err)
	}
	if _, err := s.Query(namesQuery); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("session query after close: err = %v, want ErrSessionClosed", err)
	}
	if _, err := s.Prepare(namesQuery); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("prepare after close: err = %v, want ErrSessionClosed", err)
	}
}

// TestDBCloseDrainsSessions: DB.Close closes user sessions and their
// statements, newly created sessions are born closed, and the DB-level
// query path (the auto-session) stays readable, preserving the documented
// Close contract.
func TestDBCloseDrainsSessions(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := wrap(m.DB)
	s := db.Session()
	stmt, err := s.Prepare(namesQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(namesQuery); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("session after DB.Close: err = %v, want ErrSessionClosed", err)
	}
	if _, err := stmt.Query(); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("stmt after DB.Close: err = %v, want ErrSessionClosed", err)
	}
	if born := db.Session(); born != nil {
		if _, err := born.Query(namesQuery); !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("session born after DB.Close: err = %v, want ErrSessionClosed", err)
		}
	}
	// The DB-level path survives Close (in-memory reads).
	if _, err := db.Query(namesQuery); err != nil {
		t.Fatalf("DB.Query after Close: %v", err)
	}
}

// TestEpochInvalidationDifferential is the staleness proof, run with the
// Table 2 differential methodology: execute a query until it is served from
// the plan cache, mutate the structure (which moves the stats epoch), and
// check the next execution against the reference evaluator on the live
// database — a stale cached plan over the old structure would return the
// old result set. The cache must report the invalidation.
func TestEpochInvalidationDifferential(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := wrap(m.DB)
	s := db.Session()
	defer s.Close()

	queries := []string{
		namesQuery,
		`document("db")/{red}descendant::movie[{red}child::name = "Duck Soup"]/{red}child::name`,
		`for $m in document("db")/{green}descendant::movie return $m/{green}child::votes`,
		`document("db")/{blue}descendant::movie-role/{red}parent::movie/{red}child::name`,
	}
	// Warm the cache: two rounds so every query has hit at least once.
	for round := 0; round < 2; round++ {
		for _, q := range queries {
			if _, err := s.Query(q); err != nil {
				t.Fatalf("warm %q: %v", q, err)
			}
		}
	}
	if st := s.Stats(); st.CacheHits < uint64(len(queries)) {
		t.Fatalf("warmup did not populate the cache: %+v", st)
	}

	// Structural mutations: a new movie with name and votes, then a deletion.
	comedy := m.Node("comedy")
	mv, err := db.AddElement(comedy, "movie", "red")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddElementText(mv, "name", "red", "The Gold Rush"); err != nil {
		t.Fatal(err)
	}
	before := db.PlanCacheStats()
	for _, q := range queries {
		got := sessionSet(t, s, q)
		want := evaluatorSet(t, db, q)
		if setString(got) != setString(want) {
			t.Fatalf("after insert, %q: cached path %s, evaluator %s", q, setString(got), setString(want))
		}
	}
	after := db.PlanCacheStats()
	if after.Invalidations == before.Invalidations {
		t.Fatalf("structural mutation produced no cache invalidation: before %+v after %+v", before, after)
	}

	if err := db.DeleteSubtree(mv, "red"); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		got := sessionSet(t, s, q)
		want := evaluatorSet(t, db, q)
		if setString(got) != setString(want) {
			t.Fatalf("after delete, %q: cached path %s, evaluator %s", q, setString(got), setString(want))
		}
	}
}

// TestContentUpdatePreservesCache: a content-only update (no structural
// change) keeps the epoch, so cached plans keep serving — the common
// point-update workload pays no recompiles.
func TestContentUpdatePreservesCache(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := wrap(m.DB)
	s := db.Session()
	defer s.Close()

	if _, err := s.Query(namesQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Update(epochUpdate(1)); err != nil {
		t.Fatal(err)
	}
	before := db.PlanCacheStats()
	if _, err := s.Query(namesQuery); err != nil {
		t.Fatal(err)
	}
	after := db.PlanCacheStats()
	if after.Hits != before.Hits+1 || after.Invalidations != before.Invalidations {
		t.Fatalf("content update disturbed the cache: before %+v after %+v", before, after)
	}
}

// TestConcurrentSessionsShareStmt: N sessions' worth of goroutines share one
// statement while a churner thrashes the shared cache and a writer performs
// content updates. Every execution must agree with the reference answer.
// Run with -race.
func TestConcurrentSessionsShareStmt(t *testing.T) {
	m := fixtures.NewMovieDB()
	db := wrap(m.DB)
	if _, err := db.Update(epochUpdate(0)); err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	defer s.Close()
	stmt, err := s.Prepare(votesQuery)
	if err != nil {
		t.Fatal(err)
	}

	const readers = 6
	const iters = 40
	stop := make(chan struct{})
	errc := make(chan error, readers+2)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				out, err := stmt.QueryContext(context.Background())
				if err != nil {
					errc <- fmt.Errorf("reader %d: %v", seed, err)
					return
				}
				for _, it := range out {
					if it.Value != out[0].Value {
						errc <- fmt.Errorf("reader %d: torn epoch %q vs %q", seed, it.Value, out[0].Value)
						return
					}
				}
			}
		}(g)
	}
	// Cache churner: flood the shared cache with distinct single-use entries
	// so the statement's entry is evicted and its held plan must serve.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			db.planCache.Put(fmt.Sprintf("churn-%d", i), plan.Options{DefaultColor: "churn"}, 1, &plan.Compiled{})
		}
	}()
	// Writer: content updates only, so the epoch (and held plans) survive.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for e := 1; e <= 10; e++ {
			if _, err := db.Update(epochUpdate(e)); err != nil {
				errc <- fmt.Errorf("writer: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
