package colorful

import (
	"context"
	"errors"
	"sync"

	"colorfulxml/internal/mcxquery"
	"colorfulxml/internal/obs"
	"colorfulxml/internal/pathexpr"
	"colorfulxml/internal/plan"
)

// Stmt is a prepared statement: a query parsed once, holding its own
// reference to the compiled plan so repeated executions skip parse and
// (epoch permitting) compile work even when the shared plan cache has
// evicted the entry. A Stmt is safe for concurrent use by any number of
// goroutines and stays valid until its session (or the DB) closes.
type Stmt struct {
	sess     *Session
	src      string
	expr     pathexpr.Expr
	readOnly bool

	// mu guards the held plan and the closed flag. The held plan is a
	// second-chance cache behind the shared one: reused only when both the
	// stats epoch and the plan-relevant options still match.
	mu     sync.Mutex
	closed bool
	plan   *plan.Compiled
	epoch  uint64
	opts   plan.Options // plan-relevant fields only; Catalog stripped
}

// Prepare parses the query and, for the compilable subset, eagerly compiles
// it against the current snapshot (seeding the shared plan cache). Queries
// outside that subset — constructors, evaluator-only forms — prepare
// successfully and route normally at execution; only parse errors fail.
func (s *Session) Prepare(src string) (*Stmt, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	e, err := mcxquery.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	st := &Stmt{sess: s, src: src, expr: e, readOnly: !plan.HasConstructors(e)}
	if st.readOnly {
		if sp, err := s.db.snapshotForQuery(); err == nil {
			if _, _, cerr := s.planFor(src, e, sp, st, nil); cerr != nil && !errors.Is(cerr, plan.ErrUnsupported) {
				return nil, cerr
			}
		}
	}
	if err := s.addStmt(st); err != nil {
		return nil, err
	}
	return st, nil
}

// Prepare prepares a statement on the DB's internal auto-session; it stays
// valid until DB.Close.
func (d *DB) Prepare(src string) (*Stmt, error) { return d.auto.Prepare(src) }

func (s *Session) addStmt(st *Stmt) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	s.stmts[st] = struct{}{}
	return nil
}

// Query executes the prepared statement; see DB.Query for semantics.
func (st *Stmt) Query() ([]Item, error) {
	return st.QueryContext(context.Background())
}

// QueryContext executes the prepared statement under a context deadline or
// cancellation. After the statement's session (or the DB) has closed it
// reports ErrSessionClosed.
func (st *Stmt) QueryContext(ctx context.Context) ([]Item, error) {
	s := st.sess
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	st.mu.Lock()
	closed := st.closed
	st.mu.Unlock()
	if closed {
		return nil, ErrSessionClosed
	}
	sw := obs.Start()
	out, route, err := s.routedParsed(ctx, st.src, st.expr, nil, st, nil)
	s.db.observeQuery(st.src, sw.ElapsedNanos(), len(out), route, err)
	s.observe(route, err)
	return out, err
}

// Close invalidates the statement (further executions report
// ErrSessionClosed) and detaches it from its session. Idempotent.
func (st *Stmt) Close() error {
	st.markClosed()
	s := st.sess
	s.mu.Lock()
	if s.stmts != nil {
		delete(s.stmts, st)
	}
	s.mu.Unlock()
	return nil
}

// Text returns the statement's query text.
func (st *Stmt) Text() string { return st.src }

func (st *Stmt) markClosed() {
	st.mu.Lock()
	st.closed = true
	st.plan = nil
	st.mu.Unlock()
}

// hold remembers the plan that served this statement's latest execution, so
// the statement survives shared-cache eviction without recompiling.
func (st *Stmt) hold(c *plan.Compiled, opt plan.Options, epoch uint64) {
	opt.Catalog = nil // per-snapshot handle; the epoch guards what it steered
	st.mu.Lock()
	if !st.closed {
		st.plan, st.opts, st.epoch = c, opt, epoch
	}
	st.mu.Unlock()
}

// held returns the statement's plan if it is still valid for the given
// options and epoch.
func (st *Stmt) held(opt plan.Options, epoch uint64) (*plan.Compiled, bool) {
	opt.Catalog = nil
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed || st.plan == nil || st.epoch != epoch || st.opts != opt {
		return nil, false
	}
	return st.plan, true
}
