package colorful_test

import (
	"errors"
	"path/filepath"
	"testing"

	"colorfulxml/colorful"
)

// buildMovies applies the same small workload to any DB — used to grow both
// a durable database and its in-memory twin for isomorphism checks.
func buildMovies(t *testing.T, db *colorful.DB) {
	t.Helper()
	doc := db.Document()
	genres, err := db.AddElement(doc, "movie-genres", "red")
	if err != nil {
		t.Fatal(err)
	}
	comedy, err := db.AddElement(genres, "movie-genre", "red")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddElementText(comedy, "name", "red", "Comedy"); err != nil {
		t.Fatal(err)
	}
	movie, err := db.AddElement(comedy, "movie", "red")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddElementText(movie, "name", "red", "All About Eve"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SetAttribute(movie, "year", "1950"); err != nil {
		t.Fatal(err)
	}
	awards, err := db.AddElement(doc, "movie-awards", "green")
	if err != nil {
		t.Fatal(err)
	}
	oscar, err := db.AddElement(awards, "movie-award", "green")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Adopt(oscar, movie, "green"); err != nil {
		t.Fatal(err)
	}
}

func reopen(t *testing.T, dir string, colors ...colorful.Color) *colorful.DB {
	t.Helper()
	db, err := colorful.Open(dir, colors...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenPersistsAcrossReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := colorful.Open(dir, "red", "green")
	if err != nil {
		t.Fatal(err)
	}
	buildMovies(t, db)
	// Update-language mutation commits through the same WAL hook.
	if _, err := db.Update(`
for $m in document("db")/{green}descendant::movie
update $m { insert <votes>14</votes> }`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	twin := colorful.New("red", "green")
	buildMovies(t, twin)
	if _, err := twin.Update(`
for $m in document("db")/{green}descendant::movie
update $m { insert <votes>14</votes> }`); err != nil {
		t.Fatal(err)
	}

	got := reopen(t, dir)
	defer got.Close()
	if !got.Recovery().TornTail && got.Recovery().RecordsReplayed == 0 && !got.Recovery().CheckpointLoaded {
		t.Fatalf("nothing recovered: %+v", got.Recovery())
	}
	if ok, why := colorful.Isomorphic(twin, got); !ok {
		t.Fatalf("recovered database differs: %s", why)
	}
	// The recovered database keeps serving queries.
	out, err := got.Query(`for $v in document("db")/{green}descendant::votes return $v`)
	if err != nil || len(out) != 1 || out[0].Value != "14" {
		t.Fatalf("votes after recovery = %v, %v", out, err)
	}
}

func TestConstructorQueryIsDurable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := colorful.Open(dir, "red", "green")
	if err != nil {
		t.Fatal(err)
	}
	buildMovies(t, db)
	if _, err := db.Query(`
for $m in document("db")/{red}descendant::movie[contains({red}child::name, "Eve")]
return createColor(black, <m-name>{ $m/{red}child::name }</m-name>)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	got := reopen(t, dir)
	defer got.Close()
	if !got.HasColor("black") {
		t.Fatalf("constructor-created color lost; colors = %v", got.Colors())
	}
	out, err := got.Query(`for $n in document("db")/{black}child::m-name return $n`)
	if err != nil || len(out) != 1 || out[0].Value != "All About Eve" {
		t.Fatalf("constructed node after recovery = %v, %v", out, err)
	}
}

func TestComplexChangeForcesCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := colorful.Open(dir, "red")
	if err != nil {
		t.Fatal(err)
	}
	root, err := db.AddElement(db.Document(), "list", "red")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.AddElementText(root, "item", "red", "b")
	if err != nil {
		t.Fatal(err)
	}
	if db.DurabilityStats().Checkpoints != 0 {
		t.Fatalf("unexpected early checkpoint: %+v", db.DurabilityStats())
	}
	// A positional insert has no incremental WAL representation
	// (ChangeComplex) and must force a synchronous checkpoint.
	a, err := db.NewElement("item", "red")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Database.AppendText(a, "a"); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertBefore(root, a, b, "red"); err != nil {
		t.Fatal(err)
	}
	if got := db.DurabilityStats().Checkpoints; got != 1 {
		t.Fatalf("checkpoints = %d, want 1 after a complex change", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	got := reopen(t, dir)
	defer got.Close()
	if !got.Recovery().CheckpointLoaded {
		t.Fatalf("recovery ignored the checkpoint: %+v", got.Recovery())
	}
	out, err := got.Query(`for $i in document("db")/{red}child::list/{red}child::item return $i`)
	if err != nil || len(out) != 2 {
		t.Fatalf("items = %v, %v", out, err)
	}
	if out[0].Value != "a" || out[1].Value != "b" {
		t.Fatalf("positional insert order lost: %q, %q", out[0].Value, out[1].Value)
	}
}

func TestExplicitCheckpointTruncatesWAL(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := colorful.Open(dir, "red", "green")
	if err != nil {
		t.Fatal(err)
	}
	buildMovies(t, db)
	before := db.DurabilityStats().WALBytes
	if before == 0 {
		t.Fatal("workload wrote no WAL bytes")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := db.DurabilityStats()
	if after.WALBytes != 0 || after.Checkpoints != 1 {
		t.Fatalf("after checkpoint: %+v (WAL before: %d)", after, before)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	got := reopen(t, dir)
	defer got.Close()
	st := got.Recovery()
	if !st.CheckpointLoaded || st.RecordsReplayed != 0 {
		t.Fatalf("recovery after clean checkpoint: %+v", st)
	}
	twin := colorful.New("red", "green")
	buildMovies(t, twin)
	if ok, why := colorful.Isomorphic(twin, got); !ok {
		t.Fatalf("recovered database differs: %s", why)
	}
}

func TestClosedDatabaseRejectsMutations(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := colorful.Open(dir, "red")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := db.AddElement(db.Document(), "x", "red"); !errors.Is(err, colorful.ErrClosed) {
		t.Fatalf("mutation on closed DB: %v, want ErrClosed", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, colorful.ErrClosed) {
		t.Fatalf("checkpoint on closed DB: %v, want ErrClosed", err)
	}
	if db.DurabilityStats().Durable {
		t.Fatal("closed DB still reports durable")
	}
}

func TestAutoCheckpointByWALSize(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := colorful.OpenOptions(dir, colorful.Options{CheckpointBytes: 2048}, "red")
	if err != nil {
		t.Fatal(err)
	}
	root, err := db.AddElement(db.Document(), "list", "red")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := db.AddElementText(root, "item", "red", "payload-payload-payload"); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// 200 * ~40-byte records far exceeds the 2 KiB threshold.
	if db.DurabilityStats().Checkpoints == 0 {
		t.Fatal("auto-checkpoint never fired")
	}
	got := reopen(t, dir)
	defer got.Close()
	if !got.Recovery().CheckpointLoaded {
		t.Fatalf("recovery found no checkpoint: %+v", got.Recovery())
	}
	out, err := got.Query(`for $i in document("db")/{red}child::list/{red}child::item return $i`)
	if err != nil || len(out) != 200 {
		t.Fatalf("items after recovery = %d, %v", len(out), err)
	}
}
