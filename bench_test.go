// Package colorfulxml's root benchmark suite regenerates every table and
// figure of the paper's Section 7 as Go benchmarks:
//
//	BenchmarkTable1/*    storage requirement (Table 1): loading each
//	                     representation, with element/structural-node counts
//	                     and data/index bytes reported as metrics
//	BenchmarkTable2/*    query and update processing time (Table 2), one
//	                     sub-benchmark per query and representation,
//	                     including the *D no-dedup deep variants
//	BenchmarkFigure11/*  query complexity: path expressions per query text
//	BenchmarkFigure12/*  query complexity: variable bindings per query text
//	BenchmarkAblation*   the design-choice ablations called out in DESIGN.md
//
// Run with: go test -bench=. -benchmem
package colorfulxml

import (
	"fmt"
	"sync"
	"testing"

	"colorfulxml/internal/core"
	"colorfulxml/internal/datagen"
	"colorfulxml/internal/engine"
	"colorfulxml/internal/join"
	"colorfulxml/internal/storage"
	"colorfulxml/internal/workload"
)

const (
	benchTPCWScale   = 2
	benchSigmodScale = 2
	benchSeed        = 1
)

var (
	benchOnce sync.Once
	benchTP   *workload.Stores
	benchSG   *workload.Stores
	benchDS   *datagen.Dataset
	benchErr  error
)

func benchStores(b *testing.B) (*workload.Stores, *workload.Stores) {
	b.Helper()
	benchOnce.Do(func() {
		benchDS, benchErr = datagen.TPCW(datagen.TPCWConfig{Scale: benchTPCWScale, Seed: benchSeed})
		if benchErr != nil {
			return
		}
		benchTP, benchErr = workload.LoadTPCW(benchTPCWScale, benchSeed, 0)
		if benchErr != nil {
			return
		}
		benchSG, benchErr = workload.LoadSigmod(benchSigmodScale, benchSeed, 0)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchTP, benchSG
}

// BenchmarkTable1 measures the bulk load of each representation and reports
// the Table 1 storage numbers as benchmark metrics.
func BenchmarkTable1(b *testing.B) {
	benchStores(b)
	for _, v := range workload.Variants {
		b.Run(fmt.Sprintf("TPCW_%s", v), func(b *testing.B) {
			var db *core.Database
			switch v {
			case workload.MCT:
				db = benchDS.MCT
			case workload.Shallow:
				db = benchDS.Shallow
			default:
				db = benchDS.Deep
			}
			var st *storage.Store
			for i := 0; i < b.N; i++ {
				var err error
				st, err = storage.Load(db, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			counts := st.Counts()
			data, _ := st.DataBytes()
			b.ReportMetric(float64(counts.Elements), "elements")
			b.ReportMetric(float64(counts.Attributes), "attrs")
			b.ReportMetric(float64(counts.ContentNodes), "contentNodes")
			b.ReportMetric(float64(counts.StructNodes), "structNodes")
			b.ReportMetric(float64(data)/(1<<20), "dataMB")
			b.ReportMetric(float64(st.IndexBytes())/(1<<20), "indexMB")
		})
	}
}

// BenchmarkTable2Queries times every Table 2 query on every representation
// (warm cache, like the paper's reported numbers).
func BenchmarkTable2Queries(b *testing.B) {
	tp, sg := benchStores(b)
	bench := func(qs []*workload.Query, st *workload.Stores) {
		for _, q := range qs {
			q := q
			for _, v := range workload.Variants {
				v := v
				b.Run(fmt.Sprintf("%s_%s", q.ID, v), func(b *testing.B) {
					// Warm the buffer pool.
					res, _, err := workload.RunQuery(q, st, v)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(len(res)), "results")
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, _, err := workload.RunQuery(q, st, v); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
			if q.DeepNoDedup != nil {
				b.Run(fmt.Sprintf("%sD_Deep", q.ID), func(b *testing.B) {
					res, _, err := workload.RunDeepNoDedup(q, st)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(len(res)), "results")
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, _, err := workload.RunDeepNoDedup(q, st); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
	bench(workload.TPCWQueries(), tp)
	bench(workload.SigmodQueries(), sg)
}

// BenchmarkTable2Updates times every Table 2 update. One store is loaded per
// sub-benchmark; the update is idempotent (a content rewrite), so repeated
// applications measure the warm update path — target search plus in-place
// record rewrite — without paying a store rebuild per iteration. The
// nodesTouched metric is taken from the first application (the Table 2
// "results" column).
func BenchmarkTable2Updates(b *testing.B) {
	bench := func(us []*workload.UpdateSpec, load func() (*workload.Stores, error)) {
		for _, u := range us {
			u := u
			for _, v := range workload.Variants {
				v := v
				b.Run(fmt.Sprintf("%s_%s", u.ID, v), func(b *testing.B) {
					st, err := load()
					if err != nil {
						b.Fatal(err)
					}
					touched, err := u.Run[v](st.Of(v), st.Params)
					if err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := u.Run[v](st.Of(v), st.Params); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(touched), "nodesTouched")
				})
			}
		}
	}
	bench(workload.TPCWUpdates(), func() (*workload.Stores, error) {
		return workload.LoadTPCW(1, benchSeed, 0)
	})
	bench(workload.SigmodUpdates(), func() (*workload.Stores, error) {
		return workload.LoadSigmod(1, benchSeed, 0)
	})
}

// BenchmarkFigure11 reports the number of path expressions of every query
// formulation (the figure's metric); BenchmarkFigure12 the variable
// bindings. The timed work is the parse, the metrics are the figures.
func BenchmarkFigure11(b *testing.B) { benchFigure(b, true) }

// BenchmarkFigure12 reports variable-binding counts (see BenchmarkFigure11).
func BenchmarkFigure12(b *testing.B) { benchFigure(b, false) }

func benchFigure(b *testing.B, paths bool) {
	for _, q := range append(workload.TPCWQueries(), workload.SigmodQueries()...) {
		q := q
		for _, v := range workload.Variants {
			v := v
			b.Run(fmt.Sprintf("%s_%s", q.ID, v), func(b *testing.B) {
				var c workload.Complexity
				var err error
				for i := 0; i < b.N; i++ {
					c, err = workload.QueryComplexity(q.Text[v])
					if err != nil {
						b.Fatal(err)
					}
				}
				if paths {
					b.ReportMetric(float64(c.PathExprs), "pathExprs")
				} else {
					b.ReportMetric(float64(c.Bindings), "bindings")
				}
			})
		}
	}
}

// BenchmarkCompiledVsHandPlans runs each Table 2 query both ways on the MCT
// store: the hand-specified physical plan (the paper's methodology) versus
// the plan the automatic compiler derives from the query text. The compiled
// side re-parses, re-compiles and re-costs the text every iteration, so the
// delta bounds the full compilation overhead. Deep texts using
// distinct-values are outside the compilable subset and are skipped.
func BenchmarkCompiledVsHandPlans(b *testing.B) {
	tp, sg := benchStores(b)
	bench := func(qs []*workload.Query, st *workload.Stores) {
		for _, q := range qs {
			q := q
			if _, _, _, err := workload.RunCompiled(q, st, workload.MCT); err != nil {
				continue
			}
			b.Run(fmt.Sprintf("%s_Hand", q.ID), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := workload.RunQuery(q, st, workload.MCT); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s_Compiled", q.ID), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, _, err := workload.RunCompiled(q, st, workload.MCT); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	bench(workload.TPCWQueries(), tp)
	bench(workload.SigmodQueries(), sg)
}

// --- Ablations (DESIGN.md Section 5) ---------------------------------------

// BenchmarkAblationCrossTree compares the two implementations of the color
// transition discussed in Section 6.2: following the element back-links
// (what the store does) versus an attribute-value based join through the id
// index (what the paper's prototype did; it notes "a more sophisticated
// implementation could bring down the cost of a color crossing").
func BenchmarkAblationCrossTree(b *testing.B) {
	tp, _ := benchStores(b)
	s := tp.MCT
	lines, err := s.ScanTag(datagen.ColCustomer, "orderline")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("BackLink", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, l := range lines {
				if _, ok, err := s.CrossTree(l.Elem, datagen.ColAuthor); err != nil || !ok {
					b.Fatal(ok, err)
				}
			}
		}
	})
	b.Run("AttrValueJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, l := range lines {
				// The attribute-join route: fetch the element's id, probe the
				// attribute index, then resolve the structural node.
				e, err := s.Elem(l.Elem)
				if err != nil {
					b.Fatal(err)
				}
				ids := s.EqAttr("id", e.Attr("id"))
				if len(ids) == 0 {
					b.Fatal("lost element")
				}
				if _, ok, err := s.StructOf(ids[0], datagen.ColAuthor); err != nil || !ok {
					b.Fatal(ok, err)
				}
			}
		}
	})
}

// BenchmarkAblationJoinKind compares the primitives directly: the structural
// join of orders with order lines versus the equivalent ID/IDREF value join
// on the shallow store (the paper's central cost asymmetry).
func BenchmarkAblationJoinKind(b *testing.B) {
	tp, _ := benchStores(b)
	b.Run("Structural", func(b *testing.B) {
		s := tp.MCT
		orders, _ := s.ScanTag(datagen.ColCustomer, "order")
		lines, _ := s.ScanTag(datagen.ColCustomer, "orderline")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := join.Structural(orders, lines, join.ParentChild); len(got) == 0 {
				b.Fatal("no pairs")
			}
		}
	})
	b.Run("Value", func(b *testing.B) {
		s := tp.Shallow
		orders, _ := s.ScanTag(datagen.ColDoc, "order")
		lines, _ := s.ScanTag(datagen.ColDoc, "orderline")
		key := func(name string) join.KeyFunc {
			return func(sn storage.SNode) (string, error) {
				e, err := s.Elem(sn.Elem)
				if err != nil {
					return "", err
				}
				return e.Attr(name), nil
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, err := join.HashValue(orders, lines, key("id"), key("orderIdRef"))
			if err != nil || len(got) == 0 {
				b.Fatal(len(got), err)
			}
		}
	})
}

// BenchmarkAblationPlanOrder compares the two plan shapes of Section 6.2 for
// a query with a color transition: evaluate the single-color query first and
// cross late (small crossing input) versus crossing every candidate early.
func BenchmarkAblationPlanOrder(b *testing.B) {
	tp, _ := benchStores(b)
	s := tp.MCT
	late := func() engine.Op {
		// Filter in billing first (selective), then cross the few survivors.
		addrs := &engine.ExistsJoin{
			Input:    &engine.ScanTag{Color: datagen.ColBilling, Tag: "address"},
			Probe:    &engine.EqContent{Color: datagen.ColBilling, Tag: "country", Value: "Japan"},
			Col:      0,
			ProbeCol: 0,
			Axis:     join.ParentChild,
		}
		orders := &engine.StructJoin{Anc: addrs, Desc: &engine.ScanTag{Color: datagen.ColBilling, Tag: "order"},
			AncCol: 0, DescCol: 0, Axis: join.ParentChild}
		return &engine.CrossColor{Input: orders, Col: 1, To: datagen.ColDate}
	}
	early := func() engine.Op {
		// Cross EVERY order into the date tree, then filter by billing.
		orders := &engine.ScanTag{Color: datagen.ColBilling, Tag: "order"}
		crossed := &engine.CrossColor{Input: orders, Col: 0, To: datagen.ColDate}
		addrs := &engine.ExistsJoin{
			Input:    &engine.ScanTag{Color: datagen.ColBilling, Tag: "address"},
			Probe:    &engine.EqContent{Color: datagen.ColBilling, Tag: "country", Value: "Japan"},
			Col:      0,
			ProbeCol: 0,
			Axis:     join.ParentChild,
		}
		return &engine.ExistsJoin{Input: crossed, Probe: addrs, Col: 0, ProbeCol: 0,
			Axis: join.ParentChild, InputIsDesc: true}
	}
	for name, mk := range map[string]func() engine.Op{"CrossLate": late, "CrossEarly": early} {
		mk := mk
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := engine.Exec(s, mk()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEncoding compares interval-encoded ancestry (the stored
// (start, end) containment test via a structural join) against chasing
// parent pointers through the start index for the same ancestor check.
func BenchmarkAblationEncoding(b *testing.B) {
	tp, _ := benchStores(b)
	s := tp.MCT
	custs, _ := s.ScanTag(datagen.ColCustomer, "customer")
	lines, _ := s.ScanTag(datagen.ColCustomer, "orderline")
	b.Run("IntervalJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := join.Structural(custs, lines, join.AncestorDescendant); len(got) == 0 {
				b.Fatal("no pairs")
			}
		}
	})
	b.Run("PointerChase", func(b *testing.B) {
		isCust := make(map[int64]bool, len(custs))
		for _, c := range custs {
			isCust[c.Start] = true
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			matches := 0
			for _, l := range lines {
				cur := l
				for {
					p, ok, err := s.ParentOf(cur)
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						break
					}
					if isCust[p.Start] {
						matches++
						break
					}
					cur = p
				}
			}
			if matches == 0 {
				b.Fatal("no matches")
			}
		}
	})
}
