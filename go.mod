module colorfulxml

go 1.22
